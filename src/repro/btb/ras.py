"""Return address stack (RAS).

Returns are the one control-flow-changing instruction class that does not
consume BTB entries (Section 2): calls push their fall-through address
and returns pop it with near-perfect accuracy.  Section 5.7 evaluates the
alternative of storing return targets in the BTB instead; the frontend
simulator switches between the two via ``returns_use_ras``.

The model is a circular buffer: overflow silently overwrites the oldest
entry (so deep recursion degrades accuracy, as in hardware), underflow
returns a miss.
"""

from __future__ import annotations

from repro.checks.sanitizer import sanitizer_step


class ReturnAddressStack:
    """Bounded call/return stack with wrap-around overwrite semantics."""

    def __init__(self, depth: int = 32) -> None:
        if depth <= 0:
            raise ValueError("depth must be positive")
        self.depth = depth
        self._buffer: list[int] = [0] * depth
        self._top = 0  # index of the next free slot
        self._size = 0
        self.pushes = 0
        self.pops = 0
        self.underflows = 0
        self.overflows = 0

    def push(self, return_address: int) -> None:
        """Record the fall-through address of a call."""
        sanitizer_step(self)
        if self._size == self.depth:
            self.overflows += 1
        else:
            self._size += 1
        self._buffer[self._top] = return_address
        self._top = (self._top + 1) % self.depth
        self.pushes += 1

    def pop(self) -> int | None:
        """Predict the target of a return; None when the stack is empty."""
        sanitizer_step(self)
        self.pops += 1
        if self._size == 0:
            self.underflows += 1
            return None
        self._top = (self._top - 1) % self.depth
        self._size -= 1
        return self._buffer[self._top]

    def clone(self) -> "ReturnAddressStack":
        """Independent copy of the full stack state.

        The vectorised engine replays the call/return stream once per
        ``(returns_use_ras, depth)`` configuration and hands each
        simulator a clone of the end state (mirroring
        :meth:`repro.frontend.icache.ICache.clone`).
        """
        clone = ReturnAddressStack.__new__(ReturnAddressStack)
        clone.depth = self.depth
        clone._buffer = list(self._buffer)
        clone._top = self._top
        clone._size = self._size
        clone.pushes = self.pushes
        clone.pops = self.pops
        clone.underflows = self.underflows
        clone.overflows = self.overflows
        return clone

    def peek(self) -> int | None:
        """Top of stack without popping (speculation repair helper)."""
        if self._size == 0:
            return None
        return self._buffer[(self._top - 1) % self.depth]

    def __len__(self) -> int:
        return self._size

    def clear(self) -> None:
        self._top = 0
        self._size = 0

    def storage_bits(self, address_bits: int = 57) -> int:
        return self.depth * address_bits

    def snapshot(self) -> dict:
        """Flat metric snapshot for the observability registry."""
        return {
            "ras_pushes_total": self.pushes,
            "ras_pops_total": self.pops,
            "ras_underflows_total": self.underflows,
            "ras_overflows_total": self.overflows,
            "ras_depth": self.depth,
            "ras_occupancy": self._size,
        }
