"""Two-level BTB hierarchy (Section 5.9).

A small Level-0 BTB answers in 1 cycle; on an L0 miss a larger Level-1
BTB answers in 2 cycles and fills the L0.  Section 5.9 keeps a
conventional L0 and re-architects only the L1 with PDede, which is why
this wrapper is generic over any two :class:`BranchTargetPredictor`
instances -- the paper's configuration is
``TwoLevelBTB(BaselineBTB(l0_entries), PDedeBTB(...))``.
"""

from __future__ import annotations

from repro.branch.types import BranchEvent
from repro.btb.base import BTBLookup, BranchTargetPredictor
from repro.checks.sanitizer import sanitizer_step


class TwoLevelBTB(BranchTargetPredictor):
    """L0 + L1 hierarchy with fill-on-L1-hit.

    Args:
        level0: the fast first-level predictor.
        level1: the large second-level predictor.
        l1_extra_latency: cycles added on top of ``level1``'s own lookup
            latency to model the hierarchy traversal (paper: L1 answers
            at 2 cycles total for a conventional L1).
    """

    def __init__(
        self,
        level0: BranchTargetPredictor,
        level1: BranchTargetPredictor,
        l1_extra_latency: int = 1,
    ) -> None:
        super().__init__()
        self.level0 = level0
        self.level1 = level1
        self.l1_extra_latency = l1_extra_latency
        self.l0_hits = 0
        self.l1_hits = 0

    def lookup(self, pc: int) -> BTBLookup:
        l0_result = self.level0.lookup(pc)
        if l0_result.hit:
            self.l0_hits += 1
            return BTBLookup(
                hit=True,
                target=l0_result.target,
                latency=l0_result.latency,
                provider="l0." + l0_result.provider,
            )
        l1_result = self.level1.lookup(pc)
        if l1_result.hit or l1_result.target is not None:
            self.l1_hits += 1
            return BTBLookup(
                hit=l1_result.hit,
                target=l1_result.target,
                latency=l1_result.latency + self.l1_extra_latency,
                provider="l1." + l1_result.provider,
            )
        return BTBLookup(
            hit=False,
            target=None,
            latency=l1_result.latency + self.l1_extra_latency,
            provider="miss",
        )

    def update(self, event: BranchEvent) -> None:
        self.stats.updates += 1
        sanitizer_step(self)
        # The resolved branch trains both levels; the L0 thereby serves as
        # a fill target for anything the L1 can provide next time.
        self.level0.update(event)
        self.level1.update(event)

    # -- fast hooks (decoded-trace engine) -----------------------------------

    @property
    def supports_fast_path(self) -> bool:
        """Fast only when both levels implement the fast hooks."""
        return getattr(self.level0, "supports_fast_path", False) and getattr(
            self.level1, "supports_fast_path", False
        )

    def observe_fast(
        self,
        pc: int,
        target: int,
        taken: bool,
        is_indirect: bool,
        hashed: int,
        is_same_page: bool,
    ) -> tuple[int | None, bool, int]:
        """Combined lookup+update over the levels' split fast hooks.

        The hierarchy cannot share one tag match across lookup and
        update (the L1 is only *looked up* on an L0 miss but always
        *updated*), so it composes the levels' ``lookup_fast`` /
        ``update_fast`` in the seed call order.
        """
        l0_target, l0_hit, l0_latency = self.level0.lookup_fast(pc, hashed)
        if l0_hit:
            self.l0_hits += 1
            ltarget, lhit, latency = l0_target, True, l0_latency
        else:
            l1_target, l1_hit, l1_latency = self.level1.lookup_fast(pc, hashed)
            if l1_hit or l1_target is not None:
                self.l1_hits += 1
                ltarget, lhit, latency = (
                    l1_target,
                    l1_hit,
                    l1_latency + self.l1_extra_latency,
                )
            else:
                ltarget, lhit, latency = (
                    None,
                    False,
                    l1_latency + self.l1_extra_latency,
                )
        self.stats.updates += 1
        self.level0.update_fast(pc, target, taken, is_indirect, hashed, is_same_page)
        self.level1.update_fast(pc, target, taken, is_indirect, hashed, is_same_page)
        return (ltarget, lhit, latency)

    def storage_bits(self) -> int:
        return self.level0.storage_bits() + self.level1.storage_bits()

    @property
    def name(self) -> str:
        return f"TwoLevel({self.level0.name}+{self.level1.name})"
