"""Temporal BTB prefetching: a Twig/Phantom-BTB-style wrapper.

The paper closes Section 5.10 with: "PDede can definitely complement
Confluence, Shotgun, and other BTB prefetching techniques to hold more
branches in the BTB and in turn reduce the prefetching needed."  This
module provides that complement so the claim can be measured: a
composable wrapper that learns *temporal groups* -- the run of taken
branches that followed a BTB miss -- keyed by the branch that preceded
the miss, and pre-installs the group when the key branch is seen again
(the mechanism of Phantom-BTB (Burcea & Moshovos) and, with offline
profiles, Twig (Khan et al., MICRO'21)).

Group metadata is *virtualized* (memory-resident, as in both source
designs), so it does not count against the BTB's SRAM budget; the
``metadata_bits`` property reports its size separately.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.branch.types import BranchEvent, BranchKind
from repro.btb.base import BTBLookup, BranchTargetPredictor


class TemporalPrefetchBTB(BranchTargetPredictor):
    """Wrap any BTB with miss-triggered temporal-group prefetching.

    Args:
        inner: the wrapped branch-target predictor (baseline, PDede, ...).
        table_entries: learned temporal groups kept (LRU).
        group_size: taken branches recorded per group.
        prefetch_on: ``"hit"`` installs a group when its key branch hits
            (run-ahead, Twig-flavoured); ``"miss"`` installs when the
            keyed miss recurs (demand fill, Phantom-BTB-flavoured).
    """

    def __init__(
        self,
        inner: BranchTargetPredictor,
        table_entries: int = 2048,
        group_size: int = 8,
        prefetch_on: str = "hit",
    ) -> None:
        super().__init__()
        if prefetch_on not in ("hit", "miss"):
            raise ValueError("prefetch_on must be 'hit' or 'miss'")
        if table_entries <= 0 or group_size <= 0:
            raise ValueError("table_entries and group_size must be positive")
        self.inner = inner
        self.table_entries = table_entries
        self.group_size = group_size
        self.prefetch_on = prefetch_on
        #: key branch PC -> [(pc, kind, target)] temporal group (LRU).
        self._groups: OrderedDict[int, list[tuple[int, int, int]]] = OrderedDict()
        #: groups still being recorded: [(key pc, [entries])].
        self._recording: list[tuple[int, list[tuple[int, int, int]]]] = []
        self._previous_taken_pc: int | None = None
        self._last_lookup: tuple[int, BTBLookup] | None = None
        self.prefetches_issued = 0
        self.groups_learned = 0

    # -- lookup ----------------------------------------------------------------

    def lookup(self, pc: int) -> BTBLookup:
        result = self.inner.lookup(pc)
        self._last_lookup = (pc, result)
        key_hit = result.hit if self.prefetch_on == "hit" else not result.hit
        if key_hit and pc in self._groups:
            self._install_group(pc)
        return result

    def _install_group(self, key_pc: int) -> None:
        group = self._groups[key_pc]
        self._groups.move_to_end(key_pc)
        for branch_pc, kind_value, target in group:
            event = BranchEvent(branch_pc, BranchKind(kind_value), True, target, 0)
            self.inner.update(event)
            self.prefetches_issued += 1

    # -- update / learning --------------------------------------------------------

    def update(self, event: BranchEvent) -> None:
        self.stats.updates += 1
        # Detect whether the branch missed using the result of its own
        # fetch-time lookup (re-probing would perturb replacement state).
        missed = False
        if event.taken:
            if self._last_lookup is not None and self._last_lookup[0] == event.pc:
                missed = self._last_lookup[1].target != event.target
            else:
                missed = True  # never looked up -> unknown to the BTB
        self.inner.update(event)
        if not event.taken:
            return
        # Extend any open recordings with this taken branch.
        record = (event.pc, int(event.kind), event.target)
        finished = []
        for slot, (key_pc, entries) in enumerate(self._recording):
            entries.append(record)
            if len(entries) >= self.group_size:
                finished.append(slot)
        for slot in reversed(finished):
            key_pc, entries = self._recording.pop(slot)
            self._store_group(key_pc, entries)
        # A miss opens a new recording keyed by the preceding taken
        # branch (the branch the frontend *did* know about).
        if missed and self._previous_taken_pc is not None:
            key = (
                self._previous_taken_pc if self.prefetch_on == "hit" else event.pc
            )
            if len(self._recording) < 4:  # bounded in-flight recorders
                self._recording.append((key, [record]))
        self._previous_taken_pc = event.pc

    def _store_group(self, key_pc: int, entries: list[tuple[int, int, int]]) -> None:
        if key_pc in self._groups:
            self._groups.move_to_end(key_pc)
        self._groups[key_pc] = entries
        self.groups_learned += 1
        while len(self._groups) > self.table_entries:
            self._groups.popitem(last=False)

    # -- accounting --------------------------------------------------------------

    def storage_bits(self) -> int:
        """SRAM budget: the wrapped BTB only (metadata is virtualized)."""
        return self.inner.storage_bits()

    @property
    def metadata_bits(self) -> int:
        """Memory-resident metadata: key + group of (pc, kind, target)."""
        per_entry = 57 + self.group_size * (57 + 3 + 57)
        return self.table_entries * per_entry

    @property
    def name(self) -> str:
        return f"TemporalPrefetch[{self.prefetch_on}]({self.inner.name})"
