"""Finding baseline: fail-on-*new*-findings semantics for CI.

A static gate added to a living repo needs a ratchet, not a cliff: the
committed baseline file records the findings that existed when the gate
shipped, CI fails only on findings *beyond* it, and shrinking the
baseline is a one-flag operation (``--update-baseline``).  This repo's
baseline is empty -- every finding the analyzer surfaced was fixed, not
recorded -- but the mechanism keeps future rules adoptable.

Fingerprints are ``path:code:message`` with the path normalised
relative to the baseline file's directory and *no line numbers*, so an
unrelated edit shifting a suppressed finding down a page does not break
CI.  Identical findings are counted: a second occurrence of an already
baselined (path, code, message) is still new.
"""

from __future__ import annotations

import json
import os
from collections import Counter
from pathlib import Path
from typing import Iterable

from repro.checks.lint import LintFinding

__all__ = [
    "fingerprint",
    "load_baseline",
    "write_baseline",
    "apply_baseline",
]

BASELINE_VERSION = 1


def fingerprint(finding: LintFinding, root: Path | None = None) -> str:
    """Stable identity for one finding (line numbers excluded)."""
    path = finding.path
    if root is not None:
        try:
            path = os.path.relpath(path, root)
        except ValueError:
            pass
    return f"{Path(path).as_posix()}:{finding.code}:{finding.message}"


def load_baseline(path: Path | str) -> dict[str, int]:
    """``fingerprint -> allowed count``; a missing file allows nothing."""
    path = Path(path)
    if not path.exists():
        return {}
    document = json.loads(path.read_text())
    findings = document.get("findings", {})
    return {str(key): int(value) for key, value in findings.items()}


def write_baseline(
    path: Path | str, findings: Iterable[LintFinding], root: Path | None = None
) -> None:
    counts = Counter(fingerprint(f, root) for f in findings)
    document = {
        "version": BASELINE_VERSION,
        "findings": {key: counts[key] for key in sorted(counts)},
    }
    Path(path).write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")


def apply_baseline(
    findings: Iterable[LintFinding],
    baseline: dict[str, int],
    root: Path | None = None,
) -> tuple[list[LintFinding], list[str]]:
    """Split findings into (new, stale-baseline-entries).

    For each fingerprint, up to the baselined count of occurrences is
    tolerated (earliest lines first); the excess is new.  Baseline
    entries whose current count dropped below the recorded one are
    stale -- the finding was fixed and the baseline should shrink.
    """
    grouped: dict[str, list[LintFinding]] = {}
    for finding in sorted(findings, key=lambda f: f.sort_key):
        grouped.setdefault(fingerprint(finding, root), []).append(finding)
    new: list[LintFinding] = []
    for key, group in grouped.items():
        allowed = baseline.get(key, 0)
        new.extend(group[allowed:])
    stale = sorted(
        key
        for key, allowed in baseline.items()
        if len(grouped.get(key, ())) < allowed
    )
    return sorted(new, key=lambda f: f.sort_key), stale
