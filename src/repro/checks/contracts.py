"""REP2xx: configuration & observability contract rules.

The env-var / metric / event surface is the repo's *operational* API:
dashboards alert on metric names, runbooks grep event names, deploy
manifests set ``REPRO_*`` knobs.  None of that is type-checked, so this
module pins each surface to a declared catalog and a static pass keeps
code and catalog from drifting:

==========  ==========================  =====================================
code        name                        catches
==========  ==========================  =====================================
``REP201``  undeclared-knob             ``"REPRO_*"`` literal read in code
                                        but missing from :data:`KNOWN_KNOBS`
``REP202``  undocumented-knob           knob read in code but not mentioned
                                        in README.md / DESIGN.md
``REP203``  undeclared-metric           ``counter/gauge/histogram("name")``
                                        not in :data:`METRIC_CATALOG`
``REP204``  undeclared-event            ``emit("name")`` not in
                                        :data:`EVENT_CATALOG`
``REP205``  unused-knob                 runtime knob declared here but read
                                        nowhere in the source tree
==========  ==========================  =====================================

Scope notes: REP201 matches *whole-string* literals (help text that
merely mentions a knob inside a sentence does not trip it); REP203 only
sees literal first arguments -- bulk ``registry.publish({...})`` sites
(simulator/sanitizer snapshots) build names dynamically and are covered
by runtime tests instead; ``scope="test"`` knobs are exempt from
REP202/REP205 (they never ship in a deploy manifest).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Iterator, Mapping

from repro.checks.callgraph import Project
from repro.checks.lint import FileContext, LintFinding

__all__ = [
    "Knob",
    "KNOWN_KNOBS",
    "METRIC_CATALOG",
    "EVENT_CATALOG",
    "CONTRACT_RULES",
    "run_contracts",
]

#: code -> (name, summary) for SARIF metadata and docs.
CONTRACT_RULES = {
    "REP201": ("undeclared-knob", "REPRO_* env var read but not in the knob registry"),
    "REP202": ("undocumented-knob", "knob read in code but not mentioned in README/DESIGN"),
    "REP203": ("undeclared-metric", "metric name emitted but not in METRIC_CATALOG"),
    "REP204": ("undeclared-event", "event name emitted but not in EVENT_CATALOG"),
    "REP205": ("unused-knob", "knob declared in the registry but read nowhere"),
}


@dataclass(frozen=True)
class Knob:
    """One declared ``REPRO_*`` environment variable."""

    name: str
    scope: str  # "runtime" (ships in deploy manifests) or "test"
    description: str


_KNOB_LIST = (
    Knob("REPRO_SCALE", "runtime", "workload suite scale preset (quick/default/large)"),
    Knob("REPRO_RESULT_CACHE", "runtime", "0 disables the in-process harness result memo"),
    Knob("REPRO_DISK_CACHE", "runtime", "0 disables the persistent trace/result disk cache"),
    Knob("REPRO_DISK_CACHE_DIR", "runtime", "disk cache root directory override"),
    Knob("REPRO_SCHED_WORKERS", "runtime", "scheduler fork-worker count (0 = serial)"),
    Knob("REPRO_SCHED_SHARDS", "runtime", "scheduler shards per simulation task"),
    Knob("REPRO_SCHED_TASK_TIMEOUT", "runtime", "per-task timeout seconds before kill+retry"),
    Knob("REPRO_SCHED_MAX_RETRIES", "runtime", "retry budget per task before degradation"),
    Knob("REPRO_SCHED_LOG", "runtime", "scheduler JSONL task-log path"),
    Knob("REPRO_SERVE_HOST", "runtime", "serve bind host"),
    Knob("REPRO_SERVE_PORT", "runtime", "serve bind port"),
    Knob("REPRO_SERVE_BATCH_WINDOW", "runtime", "micro-batch open window (seconds)"),
    Knob("REPRO_SERVE_QUEUE_LIMIT", "runtime", "admission queue bound before 429"),
    Knob("REPRO_SERVE_WORKERS", "runtime", "serve worker-thread pool size"),
    Knob("REPRO_SERVE_DRAIN_TIMEOUT", "runtime", "graceful-drain budget (seconds)"),
    Knob("REPRO_SERVE_RETRY_AFTER", "runtime", "Retry-After header value for 429/503"),
    Knob("REPRO_SERVE_MAX_BODY", "runtime", "request body byte cap"),
    Knob("REPRO_SERVE_MAX_EVENTS", "runtime", "per-job trace event cap"),
    Knob("REPRO_SERVE_SCALE", "runtime", "serve-side workload scale override"),
    Knob("REPRO_SERVE_TRACE_BUFFER", "runtime", "event-log ring capacity"),
    Knob("REPRO_SERVE_EVENTS", "runtime", "event-log JSONL sink path"),
    Knob("REPRO_SERVE_STORE", "runtime", "shared result-store URL (redis://, disk://, fake://)"),
    Knob("REPRO_SERVE_STORE_TTL", "runtime", "cross-replica single-flight lease TTL seconds"),
    Knob("REPRO_SERVE_STORE_WAIT", "runtime", "seconds to await another replica's publish before local compute"),
    Knob("REPRO_SERVE_STORE_POLL", "runtime", "result-poll cadence while awaiting a publish"),
    Knob("REPRO_REDIS_URL", "test", "opt-in Redis endpoint for the RedisStore contract tests"),
    Knob("REPRO_TEST_KEEP_ENV", "test", "comma list of REPRO_* vars the hermetic test fixture preserves"),
)

#: The central knob registry: name -> :class:`Knob`.
KNOWN_KNOBS: Mapping[str, Knob] = {knob.name: knob for knob in _KNOB_LIST}

#: Every metric name the code registers via ``counter/gauge/histogram``.
#: ``registry.publish({...})`` bulk snapshots (frontend simulator,
#: sanitizer) derive names dynamically and are validated by the obs
#: tests, not statically.
METRIC_CATALOG = frozenset(
    {
        "serve_requests_total",
        "serve_request_seconds",
        "serve_queue_depth",
        "serve_batch_size",
        "serve_cache_outcome_total",
        "serve_trace_decodes_total",
        "serve_store_errors_total",
        "frontend_stall_cycles_total",
        "frontend_resteers_total",
        "frontend_engine_events_per_sec",
        "btb_misses_by_kind_total",
        "harness_result_cache_total",
        "harness_simulation_seconds",
        "harness_engine_runs_total",
        "scheduler_tasks_total",
        "scheduler_shard_seconds",
        "scheduler_timeouts_total",
        "scheduler_retries_total",
        "scheduler_steals_total",
    }
)

#: Every event name the code emits; ``obs.aggregate`` joins on these
#: (``respond`` carries latency; the rest are per-request hops).
EVENT_CATALOG = frozenset(
    {
        "admit",
        "batch-join",
        "batch-execute",
        "cache",
        "respond",
        "harness-run",
        "cache-lookup",
        "disk-result",
        "scheduler-grid",
        "store_degraded",
    }
)

_KNOB_LITERAL_RE = re.compile(r"^REPRO_[A-Z0-9_]+$")
_METRIC_FACTORIES = frozenset({"counter", "gauge", "histogram"})

#: Modules whose knob-name literals are declarations, not reads.
_SELF_MODULES = frozenset({"repro.checks.contracts"})


def _suppressed(ctx: FileContext, node: ast.AST, code: str) -> bool:
    start = getattr(node, "lineno", 1)
    end = getattr(node, "end_lineno", None) or start
    return any(ctx.suppressed(line, code) for line in range(start, end + 1))


def _knob_literals(tree: ast.Module) -> Iterator[tuple[ast.Constant, str]]:
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Constant)
            and isinstance(node.value, str)
            and _KNOB_LITERAL_RE.match(node.value)
        ):
            yield node, node.value


def _literal_calls(
    tree: ast.Module, attrs: frozenset[str], names: frozenset[str] = frozenset()
) -> Iterator[tuple[ast.Call, str, str]]:
    """``(call, method, literal-first-arg)`` for matching call sites."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call) or not node.args:
            continue
        func = node.func
        method = None
        if isinstance(func, ast.Attribute) and func.attr in attrs:
            method = func.attr
        elif isinstance(func, ast.Name) and func.id in names:
            method = func.id
        if method is None:
            continue
        first = node.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            yield node, method, first.value


def run_contracts(
    project: Project,
    docs_text: str | None = None,
    knobs: Mapping[str, Knob] | None = None,
    metrics: frozenset[str] | None = None,
    events: frozenset[str] | None = None,
    check_unused: bool = False,
) -> list[LintFinding]:
    """Run every REP2xx rule over a built project.

    ``docs_text`` enables REP202 (pass the concatenated README/DESIGN
    text; ``None`` skips the rule).  ``check_unused`` enables REP205 --
    only meaningful when the project spans the whole source tree.
    The catalog arguments exist for the unit tests; production callers
    use the module-level defaults.
    """
    knobs = KNOWN_KNOBS if knobs is None else knobs
    metrics = METRIC_CATALOG if metrics is None else metrics
    events = EVENT_CATALOG if events is None else events

    findings: list[LintFinding] = list(project.syntax_errors)
    used_knobs: dict[str, tuple[str, int, int]] = {}

    for module in sorted(project.modules):
        info = project.modules[module]
        if module in _SELF_MODULES:
            continue
        for node, value in _knob_literals(info.tree):
            used_knobs.setdefault(value, (info.path, node.lineno, node.col_offset))
            if value in knobs:
                continue
            if _suppressed(info.ctx, node, "REP201"):
                continue
            findings.append(
                LintFinding(
                    info.path,
                    node.lineno,
                    node.col_offset,
                    "REP201",
                    f"'{value}' is not in the knob registry "
                    "(repro.checks.contracts.KNOWN_KNOBS); declare it with a "
                    "scope and description, or rename the variable",
                )
            )
        for node, method, name in _literal_calls(info.tree, _METRIC_FACTORIES):
            if name in metrics:
                continue
            if _suppressed(info.ctx, node, "REP203"):
                continue
            findings.append(
                LintFinding(
                    info.path,
                    node.lineno,
                    node.col_offset,
                    "REP203",
                    f"metric '{name}' ({method}) is not in METRIC_CATALOG; "
                    "declare it so /metrics exposition and dashboards stay "
                    "in sync",
                )
            )
        for node, _method, name in _literal_calls(
            info.tree, frozenset({"emit"}), frozenset({"emit"})
        ):
            if name in events:
                continue
            if _suppressed(info.ctx, node, "REP204"):
                continue
            findings.append(
                LintFinding(
                    info.path,
                    node.lineno,
                    node.col_offset,
                    "REP204",
                    f"event '{name}' is not in EVENT_CATALOG; declare it so "
                    "obs.aggregate and /debug/trace consumers stay in sync",
                )
            )

    if docs_text is not None:
        for name in sorted(used_knobs):
            knob = knobs.get(name)
            if knob is None or knob.scope == "test":
                continue
            if name in docs_text:
                continue
            path, line, col = used_knobs[name]
            findings.append(
                LintFinding(
                    path,
                    line,
                    col,
                    "REP202",
                    f"knob '{name}' is read here but not documented in "
                    "README.md/DESIGN.md; add it to the knob table",
                )
            )

    if check_unused:
        decl_path, decl_lines = _declaration_lines(knobs)
        for name in sorted(knobs):
            knob = knobs[name]
            if knob.scope == "test" or name in used_knobs:
                continue
            findings.append(
                LintFinding(
                    decl_path,
                    decl_lines.get(name, 1),
                    0,
                    "REP205",
                    f"knob '{name}' is declared in the registry but read "
                    "nowhere in the source tree; wire it up or retire it",
                )
            )

    return sorted(set(findings), key=lambda f: f.sort_key)


def _declaration_lines(knobs: Mapping[str, Knob]) -> tuple[str, dict[str, int]]:
    """REP205 anchors at each knob's declaration line in this file."""
    path = __file__
    lines: dict[str, int] = {}
    try:
        with open(path) as handle:
            for number, line in enumerate(handle, start=1):
                for name in knobs:
                    if f'"{name}"' in line and name not in lines:
                        lines[name] = number
    except OSError:
        pass
    return path, lines
