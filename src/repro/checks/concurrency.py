"""REP1xx: interprocedural concurrency rules for the asyncio serve stack.

==========  ==========================  =====================================
code        name                        catches
==========  ==========================  =====================================
``REP101``  blocking-in-event-loop      blocking primitives (file/``os`` IO,
                                        ``time.sleep``, ``subprocess``,
                                        ``Future.result``) reachable from an
                                        ``async def`` body through any call
                                        chain that stays on the loop
``REP102``  fire-and-forget-task        ``asyncio.create_task``/
                                        ``ensure_future`` whose result is
                                        dropped (the loop holds only a weak
                                        reference; the task can be GC'd
                                        mid-flight and its exception is lost)
``REP103``  unawaited-coroutine         statement-level call to an ``async
                                        def`` that is never awaited
``REP104``  unlocked-shared-state       module/instance state mutated off the
                                        loop (worker thread, scheduler, CLI)
                                        without a lock while event-loop code
                                        reads it
``REP105``  contextvar-without-reset    ``ContextVar.set`` with no paired
                                        ``reset`` in the same function (binds
                                        leak across task/request boundaries)
==========  ==========================  =====================================

Executor boundaries stop REP101 traversal: code behind
``run_in_executor``/``to_thread``/``submit`` is *supposed* to block.
Findings honour the same ``# noqa`` discipline as the per-file rules,
checked across the whole statement extent (multiline calls included).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.checks.callgraph import (
    CallSite,
    FunctionInfo,
    Project,
    iter_own_nodes,
)
from repro.checks.lint import FileContext, LintFinding

__all__ = ["run_concurrency", "CONCURRENCY_RULES"]

#: code -> (name, summary) for SARIF metadata and docs.
CONCURRENCY_RULES = {
    "REP101": (
        "blocking-in-event-loop",
        "blocking call reachable from an async def body",
    ),
    "REP102": (
        "fire-and-forget-task",
        "create_task/ensure_future result dropped (task may be GC'd, exception lost)",
    ),
    "REP103": (
        "unawaited-coroutine",
        "call to an async def whose coroutine is never awaited",
    ),
    "REP104": (
        "unlocked-shared-state",
        "state shared between event-loop and thread code mutated without a lock",
    ),
    "REP105": (
        "contextvar-without-reset",
        "ContextVar.set with no paired reset in the same function",
    ),
}

#: Dotted stdlib calls that block the calling thread.
BLOCKING_DOTTED = frozenset(
    {
        "time.sleep",
        "os.replace",
        "os.rename",
        "os.remove",
        "os.unlink",
        "os.makedirs",
        "os.mkdir",
        "os.rmdir",
        "os.fsync",
        "shutil.rmtree",
        "shutil.copy",
        "shutil.copyfile",
        "shutil.move",
        "subprocess.run",
        "subprocess.Popen",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
    }
)

#: ``pathlib.Path`` methods that hit the filesystem.  ``replace`` and
#: ``rename`` are deliberately absent -- they collide with
#: ``str.replace``; the atomic-write idiom goes through ``os.replace``,
#: which :data:`BLOCKING_DOTTED` covers.
PATH_BLOCKING_ATTRS = frozenset(
    {
        "read_text",
        "write_text",
        "read_bytes",
        "write_bytes",
        "unlink",
        "mkdir",
        "touch",
    }
)

#: Methods on a known ``open(...)``-assigned instance attr that block.
#: ``close`` is deliberately absent: closing a sink during shutdown is
#: a one-off, not a per-request stall.
FILE_HANDLE_METHODS = frozenset(
    {"write", "writelines", "read", "readline", "readlines", "flush", "seek", "truncate"}
)

#: Container method names that mutate in place (REP104 write detection).
MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "clear",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "popleft",
        "appendleft",
        "add",
        "discard",
    }
)


def _suppressed(ctx: FileContext, node: ast.AST, code: str) -> bool:
    start = getattr(node, "lineno", 1)
    end = getattr(node, "end_lineno", None) or start
    return any(ctx.suppressed(line, code) for line in range(start, end + 1))


def _ctx_for(project: Project, function: FunctionInfo) -> FileContext:
    return project.modules[function.module].ctx


def _short(qualname: str) -> str:
    return qualname.rsplit(".", 1)[-1]


# -- blocking primitives ----------------------------------------------------


def _direct_blocking(
    project: Project, function: FunctionInfo
) -> list[tuple[ast.Call, str]]:
    """Blocking primitives appearing directly in a function's body."""
    info = project.modules[function.module]
    found: list[tuple[ast.Call, str]] = []
    handles = (
        project.file_handles.get(function.class_qualname, set())
        if function.class_qualname
        else set()
    )
    for node in iter_own_nodes(function.node):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name):
            if func.id == "open" and func.id not in info.aliases:
                found.append((node, "open()"))
                continue
            alias = info.aliases.get(func.id)
            if alias is not None and alias[1] in BLOCKING_DOTTED:
                found.append((node, f"{alias[1]}()"))
            continue
        if not isinstance(func, ast.Attribute):
            continue
        value = func.value
        if isinstance(value, ast.Name):
            dotted = f"{value.id}.{func.attr}"
            alias = info.aliases.get(value.id)
            base = alias[1] if alias is not None else value.id
            if f"{base}.{func.attr}" in BLOCKING_DOTTED or dotted in BLOCKING_DOTTED:
                found.append((node, f"{base}.{func.attr}()"))
                continue
        if (
            func.attr in FILE_HANDLE_METHODS
            and isinstance(value, ast.Attribute)
            and isinstance(value.value, ast.Name)
            and value.value.id == "self"
            and value.attr in handles
        ):
            found.append((node, f"self.{value.attr}.{func.attr}() [open file handle]"))
            continue
        if func.attr in PATH_BLOCKING_ATTRS and not (
            isinstance(value, ast.Name) and value.id in info.aliases
        ):
            found.append((node, f".{func.attr}() [filesystem]"))
            continue
        if func.attr == "result" and not node.args and not node.keywords:
            found.append((node, ".result() [synchronous Future wait]"))
    return found


def _same_context_targets(project: Project, site: CallSite) -> list[str]:
    """Targets of a site that run in the caller's thread/loop context."""
    caller = project.functions[site.caller]
    targets = []
    for target in site.targets:
        info = project.functions.get(target)
        if info is None:
            continue
        if info.is_async and not (caller.is_async and (site.awaited or site.spawned)):
            continue
        targets.append(target)
    return targets


def _blocking_closure(
    project: Project, direct: dict[str, list[tuple[ast.Call, str]]]
) -> tuple[set[str], dict[str, tuple[str, str]]]:
    """Fixpoint of "calls something blocking on the same thread".

    Returns the blocked set and, for chain reconstruction, each blocked
    function's first blocked callee (or its own primitive description).
    """
    blocked = {q for q, prims in direct.items() if prims}
    changed = True
    while changed:
        changed = False
        for qualname in project.functions:
            if qualname in blocked:
                continue
            for site in project.calls.get(qualname, ()):
                if any(
                    t in blocked for t in _same_context_targets(project, site)
                ):
                    blocked.add(qualname)
                    changed = True
                    break
    next_hop: dict[str, tuple[str, str]] = {}
    for qualname in blocked:
        if direct.get(qualname):
            continue
        for site in sorted(
            project.calls.get(qualname, ()), key=lambda s: (s.lineno, s.col)
        ):
            hops = [
                t for t in _same_context_targets(project, site) if t in blocked
            ]
            if hops:
                next_hop[qualname] = (hops[0], "")
                break
    return blocked, next_hop


def _chain_text(
    project: Project,
    start: str,
    direct: dict[str, list[tuple[ast.Call, str]]],
    next_hop: dict[str, tuple[str, str]],
) -> str:
    names = [_short(start)]
    current = start
    seen = {start}
    while not direct.get(current):
        hop = next_hop.get(current)
        if hop is None or hop[0] in seen:
            return " -> ".join(names)
        current = hop[0]
        seen.add(current)
        names.append(_short(current))
    prim = direct[current][0][1]
    return " -> ".join(names) + f": {prim}"


# -- rules ------------------------------------------------------------------


def _check_blocking(project: Project) -> Iterator[LintFinding]:
    direct = {
        q: _direct_blocking(project, f) for q, f in project.functions.items()
    }
    blocked, next_hop = _blocking_closure(project, direct)
    for qualname in sorted(project.functions):
        function = project.functions[qualname]
        if not function.is_async:
            continue
        ctx = _ctx_for(project, function)
        for node, desc in direct[qualname]:
            if _suppressed(ctx, node, "REP101"):
                continue
            yield LintFinding(
                function.path,
                node.lineno,
                node.col_offset,
                "REP101",
                f"blocking call {desc} in async function '{function.name}' "
                "stalls the event loop; move it behind run_in_executor",
            )
        for site in project.calls.get(qualname, ()):
            hops = [
                t for t in _same_context_targets(project, site) if t in blocked
            ]
            if not hops:
                continue
            if _suppressed(ctx, site.node, "REP101"):
                continue
            chain = _chain_text(project, hops[0], direct, next_hop)
            yield LintFinding(
                function.path,
                site.lineno,
                site.col,
                "REP101",
                f"async function '{function.name}' reaches a blocking call "
                f"({_short(qualname)} -> {chain}); move the blocking work "
                "behind run_in_executor",
            )


def _check_fire_and_forget(project: Project) -> Iterator[LintFinding]:
    for qualname in sorted(project.functions):
        function = project.functions[qualname]
        ctx = _ctx_for(project, function)
        for node in iter_own_nodes(function.node):
            if not (isinstance(node, ast.Expr) and isinstance(node.value, ast.Call)):
                continue
            call = node.value
            func = call.func
            name = (
                func.attr
                if isinstance(func, ast.Attribute)
                else getattr(func, "id", "")
            )
            if name not in {"create_task", "ensure_future"}:
                continue
            if _suppressed(ctx, node, "REP102"):
                continue
            yield LintFinding(
                function.path,
                node.lineno,
                node.col_offset,
                "REP102",
                f"{name}(...) result is dropped: the event loop keeps only a "
                "weak reference, so the task can be garbage-collected "
                "mid-flight and its exception silently lost; retain the task "
                "(e.g. in a set with a done-callback discard)",
            )


def _check_unawaited(project: Project) -> Iterator[LintFinding]:
    for qualname in sorted(project.functions):
        function = project.functions[qualname]
        ctx = _ctx_for(project, function)
        for site in project.calls.get(qualname, ()):
            if not site.confident or site.awaited or site.spawned:
                continue
            infos = [project.functions[t] for t in site.targets if t in project.functions]
            if not infos or not all(info.is_async for info in infos):
                continue
            # Only statement-level calls: a coroutine bound to a name
            # may legitimately be awaited/scheduled later.
            if not _is_statement_call(function.node, site.node):
                continue
            if _suppressed(ctx, site.node, "REP103"):
                continue
            yield LintFinding(
                function.path,
                site.lineno,
                site.col,
                "REP103",
                f"'{_short(site.targets[0])}' is an async def: calling it "
                "creates a coroutine that is never awaited (the body never "
                "runs); await it or schedule it with create_task",
            )


def _is_statement_call(fn_node: ast.AST, call: ast.Call) -> bool:
    for node in iter_own_nodes(fn_node):
        if isinstance(node, ast.Expr) and node.value is call:
            return True
    return False


def _binds_locally(fn_node: ast.AST, name: str) -> bool:
    """True when ``name`` is a local inside the function (param or plain
    assignment) and not declared ``global``."""
    args = getattr(fn_node, "args", None)
    if args is not None:
        all_args = [
            *args.posonlyargs,
            *args.args,
            *args.kwonlyargs,
            *([args.vararg] if args.vararg else []),
            *([args.kwarg] if args.kwarg else []),
        ]
        if any(a.arg == name for a in all_args):
            return True
    declared_global = False
    bound = False
    for node in iter_own_nodes(fn_node):
        if isinstance(node, ast.Global) and name in node.names:
            declared_global = True
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, ast.Name) and target.id == name:
                    bound = True
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            for sub in ast.walk(node.target):
                if isinstance(sub, ast.Name) and sub.id == name:
                    bound = True
    return bound and not declared_global


def _under_lock(node: ast.AST, parents: dict[ast.AST, ast.AST]) -> bool:
    current = parents.get(node)
    while current is not None:
        if isinstance(current, (ast.With, ast.AsyncWith)):
            for item in current.items:
                for sub in ast.walk(item.context_expr):
                    text = None
                    if isinstance(sub, ast.Name):
                        text = sub.id
                    elif isinstance(sub, ast.Attribute):
                        text = sub.attr
                    if text is not None and "lock" in text.lower():
                        return True
        current = parents.get(current)
    return False


def _own_parent_map(fn_node: ast.AST) -> dict[ast.AST, ast.AST]:
    parents: dict[ast.AST, ast.AST] = {}
    stack = [fn_node]
    while stack:
        node = stack.pop()
        for child in ast.iter_child_nodes(node):
            parents[child] = node
            if not isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)):
                stack.append(child)
    return parents


def _global_writes(
    fn_node: ast.AST, name: str, parents: dict[ast.AST, ast.AST]
) -> list[tuple[ast.AST, bool]]:
    """(node, locked) pairs mutating module global ``name`` in place.

    Plain ``name = value`` rebinds are excluded: swapping a reference is
    atomic under the GIL and is the codebase's sanctioned pattern for
    publishing fresh state.
    """
    writes: list[tuple[ast.AST, bool]] = []
    for node in iter_own_nodes(fn_node):
        hit = False
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == name
                ):
                    hit = True
        elif isinstance(node, ast.AugAssign):
            target = node.target
            if isinstance(target, ast.Name) and target.id == name:
                hit = True
            elif (
                isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Name)
                and target.value.id == name
            ):
                hit = True
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in MUTATING_METHODS
                and isinstance(func.value, ast.Name)
                and func.value.id == name
            ):
                hit = True
        elif isinstance(node, (ast.Delete,)):
            for target in node.targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == name
                ):
                    hit = True
        if hit:
            writes.append((node, _under_lock(node, parents)))
    return writes


def _reads_global(fn_node: ast.AST, name: str) -> bool:
    for node in iter_own_nodes(fn_node):
        if isinstance(node, ast.Name) and node.id == name and isinstance(node.ctx, ast.Load):
            return True
    return False


def _check_shared_state(project: Project) -> Iterator[LintFinding]:
    loop = project.loop_reachable()
    # Module globals: mutated off-loop without a lock + accessed on-loop.
    for module in sorted(project.modules):
        info = project.modules[module]
        names = {**info.container_globals, **info.int_globals}
        if not names:
            continue
        members = [
            f for f in project.functions.values() if f.module == module
        ]
        for name in sorted(names):
            loop_accessors = [
                f
                for f in members
                if f.qualname in loop
                and not _binds_locally(f.node, name)
                and _reads_global(f.node, name)
            ]
            if not loop_accessors:
                continue
            for function in members:
                if function.qualname in loop:
                    continue
                if _binds_locally(function.node, name):
                    continue
                parents = _own_parent_map(function.node)
                unlocked = [
                    node
                    for node, locked in _global_writes(function.node, name, parents)
                    if not locked
                ]
                if not unlocked:
                    continue
                node = min(unlocked, key=lambda n: (n.lineno, n.col_offset))
                if _suppressed(info.ctx, node, "REP104"):
                    continue
                yield LintFinding(
                    function.path,
                    node.lineno,
                    node.col_offset,
                    "REP104",
                    f"module state '{name}' is mutated in '{function.name}()' "
                    "(runs off the event loop) without a lock while "
                    f"'{loop_accessors[0].name}()' reads it from event-loop "
                    "context; guard both sides with a threading.Lock",
                )
    # Instance attrs: thread-entry method writes self.X, loop method reads it.
    thread = project.thread_reachable()
    by_class: dict[str, list[FunctionInfo]] = {}
    for function in project.functions.values():
        if function.class_qualname is not None:
            by_class.setdefault(function.class_qualname, []).append(function)
    for class_qualname in sorted(by_class):
        methods = by_class[class_qualname]
        thread_methods = [
            m for m in methods if m.qualname in thread and m.qualname not in loop
        ]
        loop_methods = [m for m in methods if m.qualname in loop]
        if not thread_methods or not loop_methods:
            continue
        for method in thread_methods:
            parents = _own_parent_map(method.node)
            for node in iter_own_nodes(method.node):
                attr = _self_attr_mutation(node)
                if attr is None or _under_lock(node, parents):
                    continue
                readers = [
                    m for m in loop_methods if _reads_self_attr(m.node, attr)
                ]
                if not readers:
                    continue
                ctx = _ctx_for(project, method)
                if _suppressed(ctx, node, "REP104"):
                    continue
                yield LintFinding(
                    method.path,
                    node.lineno,
                    node.col_offset,
                    "REP104",
                    f"'self.{attr}' is mutated in thread-entry method "
                    f"'{method.name}()' without a lock while "
                    f"'{readers[0].name}()' reads it on the event loop; "
                    "guard both sides with a threading.Lock",
                )


def _self_attr_mutation(node: ast.AST) -> str | None:
    def is_self_attr(expr: ast.AST) -> str | None:
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
        ):
            return expr.attr
        return None

    if isinstance(node, ast.AugAssign):
        return is_self_attr(node.target)
    if isinstance(node, ast.Assign):
        for target in node.targets:
            if isinstance(target, ast.Subscript):
                attr = is_self_attr(target.value)
                if attr is not None:
                    return attr
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in MUTATING_METHODS:
            return is_self_attr(func.value)
    return None


def _reads_self_attr(fn_node: ast.AST, attr: str) -> bool:
    for node in iter_own_nodes(fn_node):
        if (
            isinstance(node, ast.Attribute)
            and node.attr == attr
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return True
    return False


def _check_contextvars(project: Project) -> Iterator[LintFinding]:
    for qualname in sorted(project.functions):
        function = project.functions[qualname]
        info = project.modules[function.module]
        ctx = info.ctx
        sets: list[tuple[ast.Call, str, str]] = []
        resets: set[str] = set()
        for node in iter_own_nodes(function.node):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            base = func.value
            tracked: str | None = None
            if isinstance(base, ast.Name) and base.id in info.contextvars:
                tracked = base.id
            elif (
                isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id == "self"
                and function.class_qualname is not None
                and (function.class_qualname, base.attr) in project.attr_contextvars
            ):
                tracked = f"self.{base.attr}"
            if tracked is None:
                continue
            if func.attr == "set":
                sets.append((node, tracked, ast.dump(base)))
            elif func.attr == "reset":
                resets.add(ast.dump(base))
        for node, label, key in sets:
            if key in resets:
                continue
            if _suppressed(ctx, node, "REP105"):
                continue
            yield LintFinding(
                function.path,
                node.lineno,
                node.col_offset,
                "REP105",
                f"{label}.set(...) in '{function.name}()' has no paired "
                "reset in the same function: the binding leaks into "
                "subsequent tasks/requests sharing the context; keep the "
                "token and reset in a finally block",
            )


def run_concurrency(project: Project) -> list[LintFinding]:
    """Run every REP1xx rule over a built project."""
    findings = list(project.syntax_errors)
    findings.extend(_check_blocking(project))
    findings.extend(_check_fire_and_forget(project))
    findings.extend(_check_unawaited(project))
    findings.extend(_check_shared_state(project))
    findings.extend(_check_contextvars(project))
    return sorted(set(findings), key=lambda f: f.sort_key)
