"""repro.checks: determinism linter + microarchitectural sanitizer.

Two engines behind one front door (``python -m repro check``):

* :mod:`repro.checks.lint` / :mod:`repro.checks.rules` -- an AST pass
  over the source tree that flags constructs which silently break
  run-to-run reproducibility or bit-level fidelity (unseeded RNGs,
  unordered-set iteration, float equality, wall-clock/env reads in hot
  paths, shifts past declared field widths, unguarded divisions, ...).
* :mod:`repro.checks.sanitizer` -- an opt-in runtime invariant checker
  the BTB structures call at configurable intervals; violations raise
  :class:`~repro.checks.sanitizer.InvariantViolation` with the
  offending set/way and a state snapshot.  Disabled (the default) it is
  a null hook, mirroring :mod:`repro.obs`.

See README "Static checks & sanitizer" and DESIGN.md "Runtime
invariants" for the rule/invariant catalogue.
"""

# Only the sanitizer loads eagerly: it is a leaf module whose hook the
# BTB structures import at module scope.  The lint side is exposed
# lazily (PEP 562) because repro.checks.rules imports
# repro.storage.bits, which reaches back into the btb layer -- an
# eager import here would close a cycle through any
# ``from repro.checks.sanitizer import sanitizer_step``.
from repro.checks.sanitizer import (
    DEFAULT_CHECK_INTERVAL,
    InvariantViolation,
    NullSanitizer,
    Sanitizer,
    disable_sanitizer,
    enable_sanitizer,
    get_sanitizer,
    sanitizer_enabled,
    sanitizer_step,
    use_sanitizer,
)

_LINT_EXPORTS = {
    "FileContext": "repro.checks.lint",
    "LintFinding": "repro.checks.lint",
    "LintRule": "repro.checks.lint",
    "iter_python_files": "repro.checks.lint",
    "lint_file": "repro.checks.lint",
    "lint_source": "repro.checks.lint",
    "run_lint": "repro.checks.lint",
    "ALL_RULES": "repro.checks.rules",
    # Interprocedural passes (same lazy treatment: callgraph imports
    # the lint engine, which must stay cycle-free at package import).
    "Project": "repro.checks.callgraph",
    "build_project": "repro.checks.callgraph",
    "build_project_from_sources": "repro.checks.callgraph",
    "run_concurrency": "repro.checks.concurrency",
    "run_contracts": "repro.checks.contracts",
    "KNOWN_KNOBS": "repro.checks.contracts",
    "METRIC_CATALOG": "repro.checks.contracts",
    "EVENT_CATALOG": "repro.checks.contracts",
    "apply_baseline": "repro.checks.baseline",
    "load_baseline": "repro.checks.baseline",
    "write_baseline": "repro.checks.baseline",
    "to_json": "repro.checks.output",
    "to_sarif": "repro.checks.output",
}

__all__ = [
    "DEFAULT_CHECK_INTERVAL",
    "InvariantViolation",
    "NullSanitizer",
    "Sanitizer",
    "disable_sanitizer",
    "enable_sanitizer",
    "get_sanitizer",
    "sanitizer_enabled",
    "sanitizer_step",
    "use_sanitizer",
    *sorted(_LINT_EXPORTS),
]


def __getattr__(name: str):
    module_name = _LINT_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
