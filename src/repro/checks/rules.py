"""The determinism & fidelity rules (REP001..REP012).

Each rule encodes one way a simulator silently stops being reproducible
or faithful to the modelled hardware:

==========  ======================  ==========================================
code        name                    catches
==========  ======================  ==========================================
``REP001``  unseeded-random         module-level ``random.*`` (shared RNG)
``REP002``  set-iteration-order     iterating an unordered ``set`` expression
``REP003``  float-equality          ``==`` / ``!=`` against a float literal
``REP004``  time-in-hot-path        wall-clock reads inside lookup/update paths
``REP005``  env-in-hot-path         environment reads inside lookup/update paths
``REP006``  bit-width               shifts/masks past the declared field widths
``REP007``  unguarded-len-division  ``x / len(y)`` with no emptiness guard
``REP008``  fs-iteration-order      ``os.listdir``/``glob`` without ``sorted``
``REP009``  builtin-hash            ``hash()`` (PYTHONHASHSEED-dependent)
``REP010``  identity-ordering       ``id()`` (address-dependent values)
``REP011``  noqa-justification      blanket ``# noqa`` / unjustified REP noqa
``REP012``  scalar-loop-over-array  per-element Python loops over numpy arrays
==========  ======================  ==========================================

The bit-width rule folds shift amounts over the declared widths of
:data:`repro.storage.bits.DECLARED_FIELD_WIDTHS` (the same registry the
runtime sanitizer checks stored values against), so e.g.
``x >> (ADDRESS_BITS + 10)`` is caught statically.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from typing import Iterator

from repro.checks.lint import FileContext, LintFinding, LintRule
from repro.storage.bits import DECLARED_FIELD_WIDTHS, MAX_MODEL_BITS

__all__ = ["ALL_RULES"]

#: Function names that form the simulator's per-event hot paths.  Rules
#: REP004/REP005 ban wall-clock and environment reads inside these: a
#: result that depends on when/where a run happened is not reproducible,
#: and no modelled structure consults wall time.
HOT_PATH_FUNCTIONS = frozenset(
    {
        "lookup",
        "update",
        "observe",
        "allocate",
        "victim",
        "on_hit",
        "on_insert",
        "touch",
        "read",
        "push",
        "pop",
        "record_outcome",
        "events",
    }
)

#: ``random`` module functions that consume the shared global RNG.
_GLOBAL_RNG_FUNCTIONS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "gauss",
        "normalvariate",
        "lognormvariate",
        "triangular",
        "betavariate",
        "expovariate",
        "gammavariate",
        "paretovariate",
        "vonmisesvariate",
        "weibullvariate",
        "getrandbits",
        "randbytes",
        "seed",
    }
)

#: Method names known to return ``set`` objects in this codebase.
_SET_RETURNING_METHODS = frozenset(
    {
        "unique_values",
        "union",
        "intersection",
        "difference",
        "symmetric_difference",
    }
)


def _parent_map(tree: ast.Module) -> dict[ast.AST, ast.AST]:
    parents: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def _enclosing_function(
    node: ast.AST, parents: dict[ast.AST, ast.AST]
) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
    current = parents.get(node)
    while current is not None:
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return current
        current = parents.get(current)
    return None


class UnseededRandomRule(LintRule):
    """REP001: calls into the process-global ``random`` RNG.

    The shared RNG's stream depends on import order and on every other
    consumer in the process; simulator components must draw from an
    explicitly seeded ``random.Random(seed)`` instance instead (as the
    workload generator and ``RandomPolicy`` already do).
    """

    code = "REP001"
    name = "unseeded-random"
    summary = "module-level random.* call uses the shared unseeded RNG"

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[tuple[ast.AST, str]]:
        from_imports: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                for alias in node.names:
                    if alias.name in _GLOBAL_RNG_FUNCTIONS:
                        from_imports.add(alias.asname or alias.name)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "random"
                and func.attr in _GLOBAL_RNG_FUNCTIONS
            ):
                yield node, (
                    f"random.{func.attr}() draws from the shared global RNG; "
                    "use an explicitly seeded random.Random(seed) instance"
                )
            elif isinstance(func, ast.Name) and func.id in from_imports:
                yield node, (
                    f"{func.id}() (from random) draws from the shared global RNG; "
                    "use an explicitly seeded random.Random(seed) instance"
                )


class SetIterationRule(LintRule):
    """REP002: iteration over an expression of unordered ``set`` type.

    Set iteration order varies with PYTHONHASHSEED and insertion
    history; any simulator decision derived from it (tie-breaks,
    invalidation sweeps, report rows) silently differs between runs.
    Wrap the iterable in ``sorted(...)`` to pin the order.
    """

    code = "REP002"
    name = "set-iteration-order"
    summary = "iteration over an unordered set expression"

    @classmethod
    def _is_set_expr(cls, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in {"set", "frozenset"}:
                return True
            if isinstance(func, ast.Attribute) and func.attr in _SET_RETURNING_METHODS:
                return True
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitAnd, ast.BitOr, ast.BitXor)
        ):
            return cls._is_set_expr(node.left) or cls._is_set_expr(node.right)
        return False

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[tuple[ast.AST, str]]:
        iterables: list[ast.AST] = []
        for node in ast.walk(tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iterables.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iterables.extend(gen.iter for gen in node.generators)
        for iterable in iterables:
            if self._is_set_expr(iterable):
                yield iterable, (
                    "iterating an unordered set: the order depends on hashing "
                    "and insertion history; wrap in sorted(...) to make it "
                    "deterministic"
                )


class FloatEqualityRule(LintRule):
    """REP003: ``==`` / ``!=`` against a float literal.

    The timing model accumulates cycles as floats; exact comparison
    against a float literal flips with any re-association of the
    arithmetic.  Compare with a tolerance, or restructure to integers.
    """

    code = "REP003"
    name = "float-equality"
    summary = "exact equality comparison against a float literal"

    @staticmethod
    def _is_float_literal(node: ast.AST) -> bool:
        if isinstance(node, ast.Constant) and type(node.value) is float:
            return True
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
            return FloatEqualityRule._is_float_literal(node.operand)
        return False

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[tuple[ast.AST, str]]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for index, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[index], operands[index + 1]
                if self._is_float_literal(left) or self._is_float_literal(right):
                    yield node, (
                        "exact ==/!= against a float literal is brittle under "
                        "re-associated arithmetic; use a tolerance (math.isclose) "
                        "or integer state"
                    )


class _HotPathCallRule(LintRule):
    """Shared machinery for REP004/REP005: banned calls in hot functions."""

    def _banned(self, node: ast.Call) -> str | None:
        raise NotImplementedError

    def _message(self, what: str, function: str) -> str:
        raise NotImplementedError

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[tuple[ast.AST, str]]:
        parents = _parent_map(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            what = self._banned(node)
            if what is None:
                continue
            function = _enclosing_function(node, parents)
            if function is not None and function.name in HOT_PATH_FUNCTIONS:
                yield node, self._message(what, function.name)


class TimeInHotPathRule(_HotPathCallRule):
    """REP004: wall-clock reads inside lookup/update hot paths.

    Modelled hardware has no wall clock; a ``time.*`` read in a hot path
    either leaks host timing into simulated behaviour or adds per-event
    overhead the obs layer was explicitly designed to avoid.
    """

    code = "REP004"
    name = "time-in-hot-path"
    summary = "wall-clock read inside a simulator hot path"

    def _banned(self, node: ast.Call) -> str | None:
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            if func.value.id == "time":
                return f"time.{func.attr}()"
            if func.value.id == "datetime" and func.attr in {"now", "utcnow", "today"}:
                return f"datetime.{func.attr}()"
        if isinstance(func, ast.Name) and func.id in {
            "perf_counter",
            "monotonic",
            "process_time",
        }:
            return f"{func.id}()"
        return None

    def _message(self, what: str, function: str) -> str:
        return (
            f"{what} inside hot path {function}(): simulated structures must "
            "not consult wall time (publish aggregates once per run instead)"
        )


class EnvInHotPathRule(_HotPathCallRule):
    """REP005: environment reads inside lookup/update hot paths.

    Environment lookups belong in configuration loading, once, at the
    edge; a hot-path read makes per-event behaviour depend on ambient
    process state and is invisible to the run's recorded config.
    """

    code = "REP005"
    name = "env-in-hot-path"
    summary = "environment read inside a simulator hot path"

    def _banned(self, node: ast.Call) -> str | None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "os"
            and func.attr == "getenv"
        ):
            return "os.getenv()"
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Attribute):
            inner = func.value
            if (
                isinstance(inner.value, ast.Name)
                and inner.value.id == "os"
                and inner.attr == "environ"
            ):
                return f"os.environ.{func.attr}()"
        return None

    def _message(self, what: str, function: str) -> str:
        return (
            f"{what} inside hot path {function}(): read the environment once "
            "at configuration time, not per event"
        )

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[tuple[ast.AST, str]]:
        yield from super().check(tree, ctx)
        # os.environ[...] subscripts are not calls; catch them separately.
        parents = _parent_map(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Subscript):
                continue
            value = node.value
            if (
                isinstance(value, ast.Attribute)
                and isinstance(value.value, ast.Name)
                and value.value.id == "os"
                and value.attr == "environ"
            ):
                function = _enclosing_function(node, parents)
                if function is not None and function.name in HOT_PATH_FUNCTIONS:
                    yield node, self._message("os.environ[...]", function.name)


class BitWidthRule(LintRule):
    """REP006: shifts / masks exceeding the declared field widths.

    Constant-folds shift amounts and mask widths over integer literals
    and the named width constants of
    :data:`repro.storage.bits.DECLARED_FIELD_WIDTHS`; anything past the
    64-bit model ceiling (or negative) would silently corrupt a
    reconstructed target -- Python ints neither wrap nor raise.
    """

    code = "REP006"
    name = "bit-width"
    summary = "shift or mask exceeds the declared field widths"

    @staticmethod
    def _fold(node: ast.AST) -> int | None:
        """Fold an int expression of literals and known width names."""
        if isinstance(node, ast.Constant) and isinstance(node.value, int):
            return node.value
        if isinstance(node, ast.Name):
            return DECLARED_FIELD_WIDTHS.get(node.id)
        if isinstance(node, ast.Attribute):
            return DECLARED_FIELD_WIDTHS.get(node.attr)
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            inner = BitWidthRule._fold(node.operand)
            return None if inner is None else -inner
        if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub, ast.Mult)):
            left = BitWidthRule._fold(node.left)
            right = BitWidthRule._fold(node.right)
            if left is None or right is None:
                return None
            if isinstance(node.op, ast.Add):
                return left + right
            if isinstance(node.op, ast.Sub):
                return left - right
            return left * right
        return None

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[tuple[ast.AST, str]]:
        for node in ast.walk(tree):
            if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.LShift, ast.RShift)):
                amount = self._fold(node.right)
                if amount is None:
                    continue
                # ``1 << n`` is mask construction (2**n), legitimate at any
                # width -- branch history registers span hundreds of bits.
                # Shifting *data* past the model width loses or fabricates
                # bits silently.
                is_mask = (
                    isinstance(node.op, ast.LShift)
                    and isinstance(node.left, ast.Constant)
                    and node.left.value == 1
                )
                if amount < 0 or (amount > MAX_MODEL_BITS and not is_mask):
                    yield node, (
                        f"shift by {amount} exceeds the {MAX_MODEL_BITS}-bit model "
                        "(declared widths: "
                        + ", ".join(f"{k}={v}" for k, v in sorted(DECLARED_FIELD_WIDTHS.items()))
                        + ")"
                    )
            elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitAnd):
                for side in (node.left, node.right):
                    if (
                        isinstance(side, ast.Constant)
                        and isinstance(side.value, int)
                        and side.value.bit_length() > MAX_MODEL_BITS
                    ):
                        yield node, (
                            f"mask literal of {side.value.bit_length()} bits exceeds "
                            f"the {MAX_MODEL_BITS}-bit model"
                        )


class UnguardedLenDivisionRule(LintRule):
    """REP007: division by ``len(...)`` with no emptiness guard.

    ``sum(xs) / len(xs)`` on an empty collection raises only on the
    input that exercises it -- typically a degenerate workload nobody
    ran locally.  A guard is any ``if``/``while``/``assert``/ternary in
    the same function that mentions the ``len`` argument.
    """

    code = "REP007"
    name = "unguarded-len-division"
    summary = "division by len(...) without an emptiness guard"

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[tuple[ast.AST, str]]:
        parents = _parent_map(tree)
        guard_dumps: dict[ast.AST | None, set[str]] = {}

        def guards_for(scope: ast.AST | None) -> set[str]:
            if scope not in guard_dumps:
                dumps: set[str] = set()
                nodes = ast.walk(scope) if scope is not None else ast.walk(tree)
                for node in nodes:
                    tests: list[ast.AST] = []
                    if isinstance(node, (ast.If, ast.While, ast.IfExp)):
                        tests.append(node.test)
                    elif isinstance(node, ast.Assert):
                        tests.append(node.test)
                    elif isinstance(node, ast.comprehension):
                        tests.extend(node.ifs)
                    for test in tests:
                        for sub in ast.walk(test):
                            dumps.add(ast.dump(sub))
                guard_dumps[scope] = dumps
            return guard_dumps[scope]

        for node in ast.walk(tree):
            if not (
                isinstance(node, ast.BinOp)
                and isinstance(node.op, (ast.Div, ast.FloorDiv, ast.Mod))
            ):
                continue
            denominator = node.right
            if not (
                isinstance(denominator, ast.Call)
                and isinstance(denominator.func, ast.Name)
                and denominator.func.id == "len"
                and len(denominator.args) == 1
            ):
                continue
            scope = _enclosing_function(node, parents)
            if ast.dump(denominator.args[0]) in guards_for(scope):
                continue
            yield node, (
                "division by len(...) with no emptiness guard in the enclosing "
                "function: an empty input raises ZeroDivisionError"
            )


class FsIterationOrderRule(LintRule):
    """REP008: filesystem listings consumed without ``sorted``.

    ``os.listdir`` / ``glob`` return entries in filesystem order, which
    differs across machines and runs; any result derived from the order
    is irreproducible.  Wrap the call in ``sorted(...)``.
    """

    code = "REP008"
    name = "fs-iteration-order"
    summary = "filesystem listing consumed without sorted(...)"

    @staticmethod
    def _is_fs_listing(node: ast.Call) -> str | None:
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            if func.value.id == "os" and func.attr in {"listdir", "scandir"}:
                return f"os.{func.attr}()"
            if func.value.id == "glob" and func.attr in {"glob", "iglob"}:
                return f"glob.{func.attr}()"
        if isinstance(func, ast.Attribute) and func.attr in {"iterdir", "rglob"}:
            return f".{func.attr}()"
        return None

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[tuple[ast.AST, str]]:
        parents = _parent_map(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            what = self._is_fs_listing(node)
            if what is None:
                continue
            ancestor = parents.get(node)
            wrapped = False
            while ancestor is not None and not isinstance(ancestor, ast.stmt):
                if (
                    isinstance(ancestor, ast.Call)
                    and isinstance(ancestor.func, ast.Name)
                    and ancestor.func.id == "sorted"
                ):
                    wrapped = True
                    break
                ancestor = parents.get(ancestor)
            if not wrapped:
                yield node, (
                    f"{what} returns entries in filesystem order; wrap in "
                    "sorted(...) for run-to-run stability"
                )


class BuiltinHashRule(LintRule):
    """REP009: the ``hash()`` builtin.

    ``hash(str)`` / ``hash(bytes)`` are salted per process by
    PYTHONHASHSEED, so anything derived from them differs between runs.
    Simulator hashing must go through the explicit ``mix64`` /
    ``hash_pc`` avalanche functions.
    """

    code = "REP009"
    name = "builtin-hash"
    summary = "hash() is PYTHONHASHSEED-dependent"

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[tuple[ast.AST, str]]:
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "hash"
            ):
                yield node, (
                    "hash() is salted per process (PYTHONHASHSEED); use "
                    "repro.branch.address.mix64/hash_pc for deterministic hashing"
                )


class IdentityOrderingRule(LintRule):
    """REP010: the ``id()`` builtin.

    Object addresses vary run to run; keys, ordering, or tie-breaks
    built on ``id()`` are irreproducible (and break under compaction).
    """

    code = "REP010"
    name = "identity-ordering"
    summary = "id() values vary between runs"

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[tuple[ast.AST, str]]:
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "id"
            ):
                yield node, (
                    "id() is an object address and varies between runs; key "
                    "structures by stable identifiers instead"
                )


class NoqaJustificationRule(LintRule):
    """REP011: suppressions must name their codes and justify REP ones.

    A blanket ``# noqa`` silences every current *and future* rule on
    its line -- the gate quietly stops gating.  And a bare
    ``# noqa: REP101`` records *that* a determinism/concurrency rule
    was overridden but not *why*, which is the part the next reader
    needs.  The required shape is the repo's existing idiom::

        risky_call()  # noqa: REP101 - sink is stdout, loop not running

    Non-REP codes (ruff's) may omit the justification; this rule only
    polices the repo's own rule family.  As a meta-rule it inspects
    comment *tokens* (docstrings quoting ``# noqa`` are not comments)
    and deliberately ignores suppression -- a noqa cannot excuse
    itself.
    """

    code = "REP011"
    name = "noqa-justification"
    summary = "blanket # noqa, or a REPxxx suppression without a justification"

    _justified = re.compile(r"^\s*[-–—]\s*\S")

    def run(self, tree: ast.Module, ctx: FileContext) -> Iterator[LintFinding]:
        try:
            tokens = list(
                tokenize.generate_tokens(io.StringIO(ctx.source).readline)
            )
        except (tokenize.TokenError, IndentationError, SyntaxError):
            return
        from repro.checks.lint import _NOQA_RE

        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _NOQA_RE.search(token.string)
            if match is None:
                continue
            line, col = token.start
            codes_text = match.group("codes")
            if not codes_text:
                yield LintFinding(
                    ctx.path,
                    line,
                    col,
                    self.code,
                    "blanket '# noqa' suppresses every current and future "
                    "rule on this line; list the specific codes "
                    "('# noqa: REP001,REP007')",
                )
                continue
            codes = {c.strip().upper() for c in codes_text.split(",") if c.strip()}
            if not any(c.startswith("REP") for c in codes):
                continue
            remainder = token.string[match.end():]
            if not self._justified.match(remainder):
                yield LintFinding(
                    ctx.path,
                    line,
                    col,
                    self.code,
                    "suppressing a REP rule needs a justification on the "
                    "same comment ('# noqa: REP101 - why this is safe')",
                )


class ScalarLoopOverArrayRule(LintRule):
    """REP012: per-element Python loops over numpy arrays in hot modules.

    Iterating a numpy array from Python materialises one numpy scalar
    per element -- roughly 30x the cost of iterating the equivalent
    list, and the exact pattern the columnar engine exists to avoid.
    Inside the engine's hot directories (``workloads/``, ``frontend/``,
    ``btb/``) a loop must either be vectorised away or iterate
    ``array.tolist()`` (one bulk conversion, then native ints).

    The rule flags ``for`` loops (and comprehensions) whose iterable is
    a direct ndarray producer: any ``np.*``/``numpy.*`` call, or an
    ndarray-returning method like ``.astype()``/``.cumsum()`` --
    including through ``enumerate``/``zip``/``reversed`` wrappers.
    Name-typed arrays are invisible to an AST linter, so this catches
    the declared producers, not every possible alias; ``.tolist()``
    at the loop header is the sanctioned escape.
    """

    code = "REP012"
    name = "scalar-loop-over-array"
    summary = "per-element Python loop over a numpy array in a hot module"

    _HOT_DIRS = frozenset({"workloads", "frontend", "btb"})

    #: Methods that return ndarrays in this codebase (list methods like
    #: ``.copy()`` are deliberately absent -- too ambiguous).
    _NDARRAY_METHODS = frozenset(
        {
            "astype",
            "cumsum",
            "ravel",
            "flatten",
            "nonzero",
            "reshape",
            "clip",
            "argsort",
            "compress",
            "take",
        }
    )

    def _producer(self, node: ast.AST) -> str | None:
        if not isinstance(node, ast.Call):
            return None
        func = node.func
        if not isinstance(func, ast.Attribute):
            return None
        if isinstance(func.value, ast.Name) and func.value.id in {"np", "numpy"}:
            return f"{func.value.id}.{func.attr}(...)"
        if func.attr in self._NDARRAY_METHODS:
            return f".{func.attr}(...)"
        return None

    def _flagged(self, iterable: ast.AST) -> str | None:
        if (
            isinstance(iterable, ast.Call)
            and isinstance(iterable.func, ast.Name)
            and iterable.func.id in {"enumerate", "zip", "reversed"}
        ):
            for arg in iterable.args:
                producer = self._producer(arg)
                if producer is not None:
                    return producer
            return None
        return self._producer(iterable)

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[tuple[ast.AST, str]]:
        from pathlib import PurePath

        if not self._HOT_DIRS & set(PurePath(ctx.path).parts):
            return
        for node in ast.walk(tree):
            if isinstance(node, ast.For):
                iterables = [node.iter]
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iterables = [gen.iter for gen in node.generators]
            else:
                continue
            for iterable in iterables:
                producer = self._flagged(iterable)
                if producer is not None:
                    yield node, (
                        f"per-element Python loop over a numpy array "
                        f"({producer}): each step materialises a numpy "
                        "scalar; vectorise the loop, or iterate "
                        "'.tolist()' of the array instead"
                    )


ALL_RULES: tuple[type[LintRule], ...] = (
    UnseededRandomRule,
    SetIterationRule,
    FloatEqualityRule,
    TimeInHotPathRule,
    EnvInHotPathRule,
    BitWidthRule,
    UnguardedLenDivisionRule,
    FsIterationOrderRule,
    BuiltinHashRule,
    IdentityOrderingRule,
    NoqaJustificationRule,
    ScalarLoopOverArrayRule,
)
