"""Determinism & fidelity linter: engine, findings, and the file walker.

A small ruff-plugin-style framework over the stdlib ``ast`` module.  Each
rule is a :class:`LintRule` subclass registered in
:mod:`repro.checks.rules`; the engine parses every Python file once,
hands the tree to each rule, and collects :class:`LintFinding` records.

Why a bespoke linter: the properties that make this reproduction *trust-
worthy* are not generic style issues.  A single unseeded ``random`` call
or an iteration over an unordered ``set`` silently changes simulation
results between runs, and a shift past a declared field width corrupts a
reconstructed target without raising.  Generic tools do not know the
repo's 57-bit address layout or its hot lookup/update paths; these rules
do (see README "Static checks & sanitizer").

Suppression: a trailing ``# noqa`` comment silences every rule on that
line, ``# noqa: REP001,REP007`` silences the listed codes only.  The
project policy (ISSUE 2) is to *fix* findings, so suppressions should be
rare and justified in an adjacent comment.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

__all__ = [
    "LintFinding",
    "LintRule",
    "FileContext",
    "lint_file",
    "lint_source",
    "run_lint",
    "iter_python_files",
]

_NOQA_RE = re.compile(r"#\s*noqa(?::\s*(?P<codes>[A-Z0-9, ]+))?", re.IGNORECASE)


@dataclass(frozen=True)
class LintFinding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def format(self) -> str:
        """Render ruff-style: ``path:line:col: CODE message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    @property
    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.code)


@dataclass
class FileContext:
    """Per-file state shared by every rule: path, source, noqa map."""

    path: str
    source: str
    #: line number -> set of suppressed codes; ``{"*"}`` suppresses all.
    noqa: dict[int, set[str]] = field(default_factory=dict)

    @classmethod
    def from_source(cls, source: str, path: str = "<memory>") -> "FileContext":
        noqa: dict[int, set[str]] = {}
        for number, line in enumerate(source.splitlines(), start=1):
            match = _NOQA_RE.search(line)
            if not match:
                continue
            codes = match.group("codes")
            if codes:
                noqa[number] = {code.strip().upper() for code in codes.split(",") if code.strip()}
            else:
                noqa[number] = {"*"}
        return cls(path=path, source=source, noqa=noqa)

    def suppressed(self, line: int, code: str) -> bool:
        codes = self.noqa.get(line)
        if codes is None:
            return False
        return "*" in codes or code in codes


class LintRule:
    """Base class for one determinism/fidelity rule.

    Subclasses set ``code`` (REPnnn), ``name`` (kebab-case slug), and
    ``summary`` (one line for ``--explain`` style listings), then
    implement :meth:`check` yielding ``(node, message)`` pairs.
    """

    code: str = "REP000"
    name: str = "abstract-rule"
    summary: str = ""

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[tuple[ast.AST, str]]:
        raise NotImplementedError

    def run(self, tree: ast.Module, ctx: FileContext) -> Iterator[LintFinding]:
        for node, message in self.check(tree, ctx):
            line = getattr(node, "lineno", 1)
            col = getattr(node, "col_offset", 0)
            # A statement may span lines (parenthesised calls, implicit
            # string concatenation); a noqa comment anywhere in its
            # extent suppresses it, matching where a formatter may have
            # pushed the comment.
            end = getattr(node, "end_lineno", None) or line
            if any(ctx.suppressed(n, self.code) for n in range(line, end + 1)):
                continue
            yield LintFinding(ctx.path, line, col, self.code, message)


def _all_rules() -> list[LintRule]:
    # Imported lazily so rules.py may import engine helpers freely.
    from repro.checks.rules import ALL_RULES

    return [rule_cls() for rule_cls in ALL_RULES]


def lint_source(
    source: str, path: str = "<memory>", rules: Iterable[LintRule] | None = None
) -> list[LintFinding]:
    """Lint one source string; the unit tests' entry point."""
    ctx = FileContext.from_source(source, path)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return [
            LintFinding(
                path,
                error.lineno or 1,
                error.offset or 0,
                "REP000",
                f"syntax error: {error.msg}",
            )
        ]
    findings: list[LintFinding] = []
    for rule in rules if rules is not None else _all_rules():
        findings.extend(rule.run(tree, ctx))
    return sorted(findings, key=lambda finding: finding.sort_key)


def lint_file(path: Path, rules: Iterable[LintRule] | None = None) -> list[LintFinding]:
    return lint_source(path.read_text(), str(path), rules)


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Yield ``.py`` files under ``paths`` in sorted (deterministic) order."""
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def run_lint(
    paths: Iterable[Path | str], rules: Iterable[LintRule] | None = None
) -> list[LintFinding]:
    """Lint every Python file under ``paths``; findings sorted by location."""
    rule_objects = list(rules) if rules is not None else _all_rules()
    findings: list[LintFinding] = []
    for file_path in iter_python_files(Path(p) for p in paths):
        findings.extend(lint_file(file_path, rule_objects))
    return sorted(findings, key=lambda finding: finding.sort_key)
