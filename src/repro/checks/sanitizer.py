"""Microarchitectural sanitizer: opt-in runtime invariant checking.

PAPER.md states invariants the structures themselves never verify; this
module verifies them at configurable intervals while a simulation runs
(DESIGN.md "Runtime invariants" maps each one to its paper section):

* ``pointer-liveness``     -- every valid non-delta BTBM entry's region/
  page pointers name in-range, live Region-/Page-BTB slots (Section 4.2:
  the BTBM never holds dangling-*new* pointers).
* ``generation-coherence`` -- a stored generation never exceeds the
  table slot's; with ``invalidate_stale_pointers`` it must match exactly
  (Section 4.4.2's stale-read accounting depends on this ordering).
* ``link-balance``         -- in invalidating mode the reverse user maps
  mirror the forward pointers exactly (alloc/unlink refcounting).
* ``delta-legality``       -- delta entries are same-page: no pointers,
  offsets within 12 bits, short multi-entry ways hold only delta
  entries (Sections 4.3/4.3.1).
* ``field-width``          -- stored tags / confidences / offsets /
  values fit their declared widths (Table 2's bit budget is only
  honest if nothing overflows its field).
* ``replacement-state``    -- LRU orders are permutations, RRPVs within
  range, FIFO cursors in bounds.
* ``dedup-uniqueness``     -- a DedupValueTable stores each value at
  most once (Section 4.2: that *is* the deduplication).
* ``storage-accounting``   -- live structures' ``storage_bits()`` agree
  with the Table 2 accounting in :mod:`repro.storage.bits`.
* ``ras-state``            -- RAS size/cursor within bounds, counter
  arithmetic consistent.

Mirrors :mod:`repro.obs`: disabled (the default) the module-level hook
is a branch on ``None`` -- a true no-op that never inspects state --
so the hot loop pays ~nothing.  Enable with ``--sanitize`` on the CLI
or :func:`use_sanitizer` in tests.  A violation raises
:class:`InvariantViolation` carrying the structure, set/way, and a
state snapshot of the offending slot.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Iterator

__all__ = [
    "DEFAULT_CHECK_INTERVAL",
    "InvariantViolation",
    "NullSanitizer",
    "Sanitizer",
    "disable_sanitizer",
    "enable_sanitizer",
    "get_sanitizer",
    "sanitizer_enabled",
    "sanitizer_step",
    "use_sanitizer",
]

#: Structure updates between two full checks of the stepping structure.
#: Sweeps are O(entries); 8192 keeps the armed tax inside the 10%
#: budget (benchmarks/bench_sanitizer_overhead.py) while still
#: sweeping dozens of times per smoke-scale run.
DEFAULT_CHECK_INTERVAL = 8192

_NO_PTR = -1  # mirrors repro.core.pdede (duck-typed, no import cycle)
_NO_TAG = -1  # flat-storage sentinel: invalid BTB slots must hold this tag


class InvariantViolation(AssertionError):
    """A runtime invariant does not hold.

    Attributes:
        invariant: invariant code (``pointer-liveness``, ...).
        structure: human name of the offending structure.
        set_index / way: offending slot when the invariant is per-slot.
        snapshot: small dict of the slot / structure state at detection.
    """

    def __init__(
        self,
        invariant: str,
        structure: str,
        message: str,
        set_index: int | None = None,
        way: int | None = None,
        snapshot: dict | None = None,
    ) -> None:
        self.invariant = invariant
        self.structure = structure
        self.set_index = set_index
        self.way = way
        self.snapshot = snapshot or {}
        location = ""
        if set_index is not None:
            location = f" at set {set_index}" + (f" way {way}" if way is not None else "")
        super().__init__(f"[{invariant}] {structure}{location}: {message}")


def _violate(
    invariant: str,
    structure: str,
    message: str,
    set_index: int | None = None,
    way: int | None = None,
    **snapshot: Any,
) -> None:
    raise InvariantViolation(
        invariant, structure, message, set_index=set_index, way=way, snapshot=snapshot
    )


# -- per-structure checkers (duck-typed; no imports from core/btb) ----------


def _check_policy(policy, structure: str, set_index: int) -> None:
    """Replacement-policy state sanity for one set."""
    kind = type(policy).__name__
    if kind == "LruPolicy":
        if sorted(policy._order) != list(range(policy.ways)):
            _violate(
                "replacement-state",
                structure,
                f"LRU order {policy._order} is not a permutation of "
                f"0..{policy.ways - 1}",
                set_index=set_index,
                order=list(policy._order),
            )
    elif kind == "SrripPolicy":
        limit = (1 << policy._m) - 1
        for way, rrpv in enumerate(policy.rrpv):
            if not 0 <= rrpv <= limit:
                _violate(
                    "replacement-state",
                    structure,
                    f"RRPV {rrpv} outside [0, {limit}]",
                    set_index=set_index,
                    way=way,
                    rrpv=rrpv,
                )
    elif kind == "FifoPolicy":
        if not 0 <= policy._next < policy.ways:
            _violate(
                "replacement-state",
                structure,
                f"FIFO cursor {policy._next} outside [0, {policy.ways})",
                set_index=set_index,
                cursor=policy._next,
            )


def check_dedup_table(table) -> None:
    """Invariants of one :class:`~repro.core.tables.DedupValueTable`."""
    name = table.name
    value_limit = 1 << table.value_bits
    seen: dict[int, tuple[int, int]] = {}
    for set_index in range(table.sets):
        _check_policy(table._policies[set_index], name, set_index)
        for way in range(table.ways):
            if not table._valid[set_index][way]:
                continue
            value = table._values[set_index][way]
            if not 0 <= value < value_limit:
                _violate(
                    "field-width",
                    name,
                    f"stored value {value:#x} exceeds {table.value_bits} bits",
                    set_index=set_index,
                    way=way,
                    value=value,
                )
            if table._generations[set_index][way] < 0:
                _violate(
                    "generation-coherence",
                    name,
                    "negative slot generation",
                    set_index=set_index,
                    way=way,
                    generation=table._generations[set_index][way],
                )
            if value in seen:
                _violate(
                    "dedup-uniqueness",
                    name,
                    f"value {value:#x} stored twice (also at set {seen[value][0]} "
                    f"way {seen[value][1]}): the table no longer deduplicates",
                    set_index=set_index,
                    way=way,
                    value=value,
                    first_slot=seen[value],
                )
            seen[value] = (set_index, way)
    expected_bits = table.entries * (table.value_bits + table.srrip_bits)
    if table.storage_bits() != expected_bits:
        _violate(
            "storage-accounting",
            name,
            f"storage_bits() = {table.storage_bits()} but geometry implies "
            f"{expected_bits}",
            reported=table.storage_bits(),
            expected=expected_bits,
        )


def _slot_snapshot(btb, set_index: int, way: int) -> dict:
    slot = set_index * btb._ways + way
    return {
        "valid": btb._valid[slot],
        "tag": btb._tags[slot],
        "delta": btb._delta[slot],
        "offset": btb._offsets[slot],
        "page_ptr": btb._page_ptr[slot],
        "region_ptr": btb._region_ptr[slot],
        "page_gen": btb._page_gen[slot],
        "region_gen": btb._region_gen[slot],
        "conf": btb._conf[slot],
    }


def _check_pdede_slot(btb, cfg, set_index: int, way: int) -> None:
    name = "btbm"
    slot = set_index * btb._ways + way
    snapshot = _slot_snapshot(btb, set_index, way)
    tag = btb._tags[slot]
    if tag < 0 or tag >> cfg.tag_bits:
        # A negative tag on a *valid* slot means the _NO_TAG sentinel leaked.
        _violate(
            "field-width",
            name,
            f"tag {tag:#x} outside [0, 2**{cfg.tag_bits})",
            set_index=set_index,
            way=way,
            **snapshot,
        )
    conf = btb._conf[slot]
    if not 0 <= conf < (1 << cfg.conf_bits):
        _violate(
            "field-width",
            name,
            f"confidence {conf} exceeds {cfg.conf_bits} bits",
            set_index=set_index,
            way=way,
            **snapshot,
        )
    offset = btb._offsets[slot]
    if offset >> 12:
        _violate(
            "field-width",
            name,
            f"page offset {offset:#x} exceeds 12 bits",
            set_index=set_index,
            way=way,
            **snapshot,
        )
    if btb._delta[slot]:
        if btb._page_ptr[slot] != _NO_PTR or btb._region_ptr[slot] != _NO_PTR:
            _violate(
                "delta-legality",
                name,
                "delta (same-page) entry carries live region/page pointers",
                set_index=set_index,
                way=way,
                **snapshot,
            )
        if btb._next_valid[slot] and btb._next_offset[slot] >> 12:
            _violate(
                "delta-legality",
                name,
                "next-target offset exceeds 12 bits",
                set_index=set_index,
                way=way,
                **snapshot,
            )
        return
    # Pointer-carrying entry.
    if way >= btb._short_base:
        _violate(
            "delta-legality",
            name,
            "short (pointer-less) multi-entry way holds a different-page entry",
            set_index=set_index,
            way=way,
            **snapshot,
        )
    for label, table, pointer, generation in (
        ("page", btb.page_btb, btb._page_ptr[slot], btb._page_gen[slot]),
        ("region", btb.region_btb, btb._region_ptr[slot], btb._region_gen[slot]),
    ):
        if not 0 <= pointer < table.entries:
            _violate(
                "pointer-liveness",
                name,
                f"{label} pointer {pointer} outside [0, {table.entries})",
                set_index=set_index,
                way=way,
                **snapshot,
            )
        t_set, t_way = divmod(pointer, table.ways)
        if not table._valid[t_set][t_way]:
            _violate(
                "pointer-liveness",
                name,
                f"{label} pointer {pointer} names an invalid {table.name} slot",
                set_index=set_index,
                way=way,
                **snapshot,
            )
        slot_generation = table._generations[t_set][t_way]
        if generation > slot_generation:
            _violate(
                "generation-coherence",
                name,
                f"stored {label} generation {generation} exceeds the slot's "
                f"{slot_generation} (generations only move forward)",
                set_index=set_index,
                way=way,
                **snapshot,
            )
        if cfg.invalidate_stale_pointers and generation != slot_generation:
            _violate(
                "generation-coherence",
                name,
                f"stale {label} pointer survived invalidating mode "
                f"(stored generation {generation} != slot {slot_generation})",
                set_index=set_index,
                way=way,
                **snapshot,
            )


def _check_pdede_links(btb) -> None:
    """Link/unlink balance of the reverse pointer maps (invalidating mode)."""
    for label, users, ptrs in (
        ("page", btb._page_ptr_users, btb._page_ptr),
        ("region", btb._region_ptr_users, btb._region_ptr),
    ):
        forward: dict[int, set[tuple[int, int]]] = {}
        ways = btb._ways
        for slot in range(btb._sets * ways):
            if btb._valid[slot] and not btb._delta[slot]:
                forward.setdefault(ptrs[slot], set()).add(divmod(slot, ways))
        for pointer, slots in users.items():
            extra = slots - forward.get(pointer, set())
            if extra:
                set_index, way = min(extra)
                _violate(
                    "link-balance",
                    "btbm",
                    f"{label} user map lists slot(s) {sorted(extra)} under "
                    f"pointer {pointer}, but they are invalid or point "
                    "elsewhere (unlink missed)",
                    set_index=set_index,
                    way=way,
                    pointer=pointer,
                )
        for pointer, slots in forward.items():
            missing = slots - users.get(pointer, set())
            if missing:
                set_index, way = min(missing)
                _violate(
                    "link-balance",
                    "btbm",
                    f"valid entry slot(s) {sorted(missing)} hold {label} "
                    f"pointer {pointer} but are absent from the user map "
                    "(link missed)",
                    set_index=set_index,
                    way=way,
                    pointer=pointer,
                )


def check_pdede(btb) -> None:
    """Full invariant sweep of a :class:`~repro.core.pdede.PDedeBTB`."""
    cfg = btb.config
    for set_index in range(btb._sets):
        if btb._policies is not None:
            _check_policy(btb._policies[set_index], "btbm", set_index)
        else:
            _check_policy(btb._long_policies[set_index], "btbm(long)", set_index)
            _check_policy(btb._short_policies[set_index], "btbm(short)", set_index)
        base = set_index * btb._ways
        for way in range(btb._ways):
            if btb._valid[base + way]:
                _check_pdede_slot(btb, cfg, set_index, way)
            elif btb._tags[base + way] != _NO_TAG:
                _violate(
                    "field-width",
                    "btbm",
                    f"invalid slot holds stale tag {btb._tags[base + way]:#x} "
                    f"instead of the {_NO_TAG} sentinel (flat tag match "
                    "would false-hit)",
                    set_index=set_index,
                    way=way,
                    tag=btb._tags[base + way],
                )
    if cfg.invalidate_stale_pointers:
        _check_pdede_links(btb)
    check_dedup_table(btb.page_btb)
    check_dedup_table(btb.region_btb)
    expected = cfg.btbm_bits() + cfg.page_btb_bits() + cfg.region_btb_bits()
    if btb.storage_bits() != expected:
        _violate(
            "storage-accounting",
            "pdede",
            f"storage_bits() = {btb.storage_bits()} but the Table 2 components "
            f"sum to {expected}",
            reported=btb.storage_bits(),
            expected=expected,
        )
    if btb.page_btb.storage_bits() != cfg.page_btb_bits():
        _violate(
            "storage-accounting",
            "page-btb",
            f"table storage {btb.page_btb.storage_bits()} != configured "
            f"{cfg.page_btb_bits()}",
            reported=btb.page_btb.storage_bits(),
            expected=cfg.page_btb_bits(),
        )
    if btb.region_btb.storage_bits() != cfg.region_btb_bits():
        _violate(
            "storage-accounting",
            "region-btb",
            f"table storage {btb.region_btb.storage_bits()} != configured "
            f"{cfg.region_btb_bits()}",
            reported=btb.region_btb.storage_bits(),
            expected=cfg.region_btb_bits(),
        )


def check_baseline(btb) -> None:
    """Invariants of a :class:`~repro.btb.baseline.BaselineBTB`."""
    name = "baseline-btb"
    target_limit = 1 << btb.target_bits
    conf_limit = 1 << btb.conf_bits
    tag_limit = 1 << btb.tag_bits
    for set_index in range(btb.sets):
        _check_policy(btb._policies[set_index], name, set_index)
        base = set_index * btb.ways
        for way in range(btb.ways):
            slot = base + way
            if not btb._valid[slot]:
                if btb._tags[slot] != _NO_TAG:
                    _violate(
                        "field-width",
                        name,
                        f"invalid slot holds stale tag {btb._tags[slot]:#x} "
                        f"instead of the {_NO_TAG} sentinel",
                        set_index=set_index,
                        way=way,
                        tag=btb._tags[slot],
                    )
                continue
            tag = btb._tags[slot]
            target = btb._targets[slot]
            conf = btb._conf[slot]
            if not 0 <= tag < tag_limit:
                _violate(
                    "field-width",
                    name,
                    f"tag {tag:#x} outside [0, 2**{btb.tag_bits})",
                    set_index=set_index,
                    way=way,
                    tag=tag,
                )
            if not 0 <= target < target_limit:
                _violate(
                    "field-width",
                    name,
                    f"target {target:#x} exceeds {btb.target_bits} bits",
                    set_index=set_index,
                    way=way,
                    target=target,
                )
            if not 0 <= conf < conf_limit:
                _violate(
                    "field-width",
                    name,
                    f"confidence {conf} exceeds {btb.conf_bits} bits",
                    set_index=set_index,
                    way=way,
                    conf=conf,
                )
    from repro.storage.bits import baseline_storage_row  # late: avoids import cycle

    expected = baseline_storage_row(
        entries=btb.entries,
        ways=btb.ways,
        tag_bits=btb.tag_bits,
        target_bits=btb.target_bits,
        srrip_bits=btb._policies[0].metadata_bits_per_entry(),
        conf_bits=btb.conf_bits,
        pid_bits=btb.pid_bits,
    ).total_bits
    if btb.storage_bits() != expected:
        _violate(
            "storage-accounting",
            name,
            f"storage_bits() = {btb.storage_bits()} but the Table 2 row sums "
            f"to {expected}",
            reported=btb.storage_bits(),
            expected=expected,
        )


def check_twolevel(btb) -> None:
    """Recurse into both levels of a :class:`~repro.btb.twolevel.TwoLevelBTB`."""
    for level in (btb.level0, btb.level1):
        checker = _CHECKERS.get(type(level).__name__)
        if checker is not None:
            checker(level)


def check_ras(ras) -> None:
    """Invariants of a :class:`~repro.btb.ras.ReturnAddressStack`."""
    name = "ras"
    if not 0 <= ras._size <= ras.depth:
        _violate(
            "ras-state",
            name,
            f"size {ras._size} outside [0, {ras.depth}]",
            size=ras._size,
            depth=ras.depth,
        )
    if not 0 <= ras._top < ras.depth:
        _violate(
            "ras-state",
            name,
            f"top-of-stack cursor {ras._top} outside [0, {ras.depth})",
            top=ras._top,
            depth=ras.depth,
        )
    if len(ras._buffer) != ras.depth:
        _violate(
            "ras-state",
            name,
            f"buffer length {len(ras._buffer)} != depth {ras.depth}",
            buffer_len=len(ras._buffer),
            depth=ras.depth,
        )
    if ras.underflows > ras.pops:
        _violate(
            "ras-state",
            name,
            f"underflow count {ras.underflows} exceeds pop count {ras.pops}",
            underflows=ras.underflows,
            pops=ras.pops,
        )


_CHECKERS: dict[str, Callable[[Any], None]] = {
    "PDedeBTB": check_pdede,
    "DedupValueTable": check_dedup_table,
    "BaselineBTB": check_baseline,
    "TwoLevelBTB": check_twolevel,
    "ReturnAddressStack": check_ras,
}


class NullSanitizer:
    """Disabled mode: every hook is a no-op that never reads state."""

    enabled = False
    interval = 0
    checks_run = 0
    steps = 0

    def step(self, structure) -> None:
        pass

    def check(self, structure) -> None:
        pass

    def snapshot(self) -> dict:
        return {}


class Sanitizer:
    """Counts structure updates; runs a full check every ``interval``.

    One shared step counter covers every instrumented structure, so with
    several structures active each is swept roughly every
    ``interval * structures`` own-updates -- cheap, deterministic, and
    independent of construction order.  ``check()`` verifies a structure
    immediately (tests and the CLI's final sweep use this).
    """

    enabled = True

    def __init__(self, interval: int = DEFAULT_CHECK_INTERVAL) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = interval
        self.steps = 0
        self.checks_run = 0
        self.structures_seen: set[str] = set()

    def step(self, structure) -> None:
        self.steps += 1
        if self.steps % self.interval == 0:
            self.check(structure)

    def check(self, structure) -> None:
        checker = _CHECKERS.get(type(structure).__name__)
        if checker is None:
            return
        self.structures_seen.add(type(structure).__name__)
        self.checks_run += 1
        checker(structure)

    def snapshot(self) -> dict:
        """Flat metric snapshot (README observability naming scheme)."""
        return {
            "sanitizer_steps_total": self.steps,
            "sanitizer_checks_total": self.checks_run,
            "sanitizer_interval": self.interval,
            "sanitizer_structures": len(self.structures_seen),
        }


_NULL = NullSanitizer()
_ACTIVE: Sanitizer | None = None


def sanitizer_step(structure) -> None:
    """Hot-path hook: a ``None`` test when disabled, a counted step when on.

    Every instrumented structure calls this once per update; keeping the
    branch here (rather than a null-object method call) makes the
    disabled path one global load + identity test.
    """
    active = _ACTIVE
    if active is not None:
        active.step(structure)


def get_sanitizer() -> Sanitizer | NullSanitizer:
    """The active sanitizer, or the shared null object when disabled."""
    return _ACTIVE if _ACTIVE is not None else _NULL


def sanitizer_enabled() -> bool:
    return _ACTIVE is not None


def enable_sanitizer(interval: int = DEFAULT_CHECK_INTERVAL) -> Sanitizer:
    """Install (and return) a live sanitizer as the process-wide hook."""
    global _ACTIVE
    _ACTIVE = Sanitizer(interval=interval)
    return _ACTIVE


def disable_sanitizer() -> None:
    global _ACTIVE
    _ACTIVE = None


@contextmanager
def use_sanitizer(sanitizer: Sanitizer | None = None) -> Iterator[Sanitizer]:
    """Scope a sanitizer: install on entry, restore the prior one on exit."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = sanitizer if sanitizer is not None else Sanitizer()
    try:
        yield _ACTIVE
    finally:
        _ACTIVE = previous
