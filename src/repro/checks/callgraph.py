"""Project-wide call graph for interprocedural checks.

The per-file rules of :mod:`repro.checks.rules` cannot see across call
boundaries, but the properties that matter for the serve stack are
inherently interprocedural: a ``time.sleep`` two helpers deep stalls the
event loop exactly as hard as one written inline in the handler.  This
module builds a conservative, name-based call graph over the whole
source tree once, and the concurrency pass
(:mod:`repro.checks.concurrency`) runs reachability queries over it.

Resolution strategy (deliberately simple, tuned for precision over
recall -- a static gate that cries wolf gets deleted):

* ``f(...)`` resolves to a same-module function or an explicit
  ``from mod import f`` target.
* ``self.m(...)`` resolves to a method of the enclosing class first,
  falling back to a union over same-named methods project-wide.
* ``alias.f(...)`` resolves through ``import``/``from .. import``
  aliases when ``alias`` names a project module.  Attribute calls whose
  base is a *known stdlib/third-party alias* resolve to nothing rather
  than polluting the union.
* Any other ``obj.m(...)`` unions over all project functions named
  ``m``, capped at :data:`UNION_CAP` candidates and filtered through
  :data:`UNION_DENY` (ubiquitous container/IO method names that would
  otherwise wire unrelated code together).

Executor hand-offs (``loop.run_in_executor``, ``asyncio.to_thread``,
``executor.submit``, ``threading.Thread(target=...)``) are treated as
*boundaries*: the callee is registered as a thread entry point, not as
an edge, because the blocking-ness of code behind the boundary is the
point of using an executor.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.checks.lint import FileContext, LintFinding, iter_python_files

__all__ = [
    "CallSite",
    "FunctionInfo",
    "ModuleInfo",
    "Project",
    "build_project",
    "build_project_from_sources",
    "iter_own_nodes",
]

#: Attribute names too generic to union-resolve by bare name: wiring
#: ``record.update(...)`` to every BTB's ``update`` method (or
#: ``writer.write`` to a nested file helper) would connect unrelated
#: subsystems and drown the analysis in false paths.  ``emit`` is
#: deliberately *not* here: ``self.events.emit`` resolving into
#: ``EventLog.emit`` is the single most important edge in the serve
#: stack.
UNION_DENY = frozenset(
    {
        "acquire",
        "add",
        "append",
        "cancel",
        "clear",
        "close",
        "copy",
        "discard",
        "done",
        "drain",
        "extend",
        "flush",
        "get",
        "insert",
        "items",
        "join",
        "keys",
        "load",
        "observe",
        "open",
        "pop",
        "popleft",
        "put",
        "read",
        "recv",
        "release",
        "remove",
        "result",
        "run",
        "seek",
        "send",
        "set",
        "setdefault",
        "shutdown",
        "start",
        "submit",
        "terminate",
        "update",
        "values",
        "wait",
        "write",
    }
)

#: Union resolution gives up past this many same-named candidates: a
#: name that common carries no information about the actual callee.
UNION_CAP = 8

_DEF_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)
_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method in the project."""

    qualname: str
    module: str
    name: str
    class_qualname: str | None
    path: str
    lineno: int
    is_async: bool
    node: ast.AST = field(repr=False, compare=False)


@dataclass(frozen=True)
class CallSite:
    """One resolved call expression inside a function body."""

    caller: str
    lineno: int
    col: int
    targets: tuple[str, ...]
    #: True for same-module / ``self.`` / module-alias resolutions;
    #: False for bare-name unions (REP103 only trusts confident sites).
    confident: bool
    awaited: bool
    #: Call appears as the argument of ``create_task``/``ensure_future``
    #: (the coroutine *does* run, on the loop, just not inline).
    spawned: bool
    node: ast.Call = field(repr=False, compare=False)


@dataclass
class ModuleInfo:
    """One parsed source file."""

    module: str
    path: str
    source: str
    tree: ast.Module
    ctx: FileContext
    #: local name -> ("module", dotted) | ("obj", dotted qualname)
    aliases: dict[str, tuple[str, str]] = field(default_factory=dict)
    #: module-level mutable-container globals: name -> declaration line
    container_globals: dict[str, int] = field(default_factory=dict)
    #: module-level integer-constant globals (counters): name -> line
    int_globals: dict[str, int] = field(default_factory=dict)
    #: module-level names bound to ``ContextVar(...)``
    contextvars: set[str] = field(default_factory=set)


@dataclass
class Project:
    """The parsed project: functions, call sites, and boundaries."""

    modules: dict[str, ModuleInfo] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    by_name: dict[str, list[str]] = field(default_factory=dict)
    calls: dict[str, list[CallSite]] = field(default_factory=dict)
    #: qualnames handed to an executor/thread boundary
    thread_roots: set[str] = field(default_factory=set)
    #: class qualname -> instance attrs assigned ``open(...)`` somewhere
    file_handles: dict[str, set[str]] = field(default_factory=dict)
    #: (class qualname, attr) pairs bound to ``ContextVar(...)``
    attr_contextvars: set[tuple[str, str]] = field(default_factory=set)
    #: REP000 findings for unparseable files
    syntax_errors: list[LintFinding] = field(default_factory=list)

    # -- queries ------------------------------------------------------------

    def async_roots(self) -> list[str]:
        return sorted(q for q, f in self.functions.items() if f.is_async)

    def successors(self, qualname: str) -> Iterator[str]:
        """Callees executed in the *same* thread/loop context as the
        caller.  A sync function naming an async one does not run it
        (the coroutine object is dropped or scheduled elsewhere), so
        sync -> async edges only exist for awaited/spawned sites."""
        caller = self.functions[qualname]
        for site in self.calls.get(qualname, ()):
            for target in site.targets:
                info = self.functions.get(target)
                if info is None:
                    continue
                if info.is_async and not (
                    caller.is_async and (site.awaited or site.spawned)
                ):
                    continue
                yield target

    def reachable_from(self, roots: Iterable[str]) -> set[str]:
        seen = set()
        frontier = [q for q in roots if q in self.functions]
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(
                t for t in self.successors(current) if t not in seen
            )
        return seen

    def loop_reachable(self) -> set[str]:
        """Functions that can run on the asyncio event loop."""
        return self.reachable_from(self.async_roots())

    def thread_reachable(self) -> set[str]:
        """Functions reachable from an executor/thread entry point."""
        return self.reachable_from(self.thread_roots)


def module_name_for(path: Path) -> str:
    """Dotted module name: the path tail from the last ``repro`` part."""
    parts = list(path.with_suffix("").parts)
    if "repro" in parts:
        index = len(parts) - 1 - parts[::-1].index("repro")
        parts = parts[index:]
    else:
        parts = parts[-1:]
    if parts[-1] == "__init__":
        parts = parts[:-1] or ["repro"]
    return ".".join(parts)


def iter_own_nodes(root: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested defs,
    lambdas, or class bodies (those are separate execution scopes)."""
    for child in ast.iter_child_nodes(root):
        yield child
        if not isinstance(child, _SCOPE_NODES):
            yield from iter_own_nodes(child)


def build_project_from_sources(sources: dict[str, str]) -> Project:
    """Build from ``{module_name: source}`` (the unit tests' entry)."""
    project = Project()
    parsed: list[tuple[str, str, str]] = []
    for module, source in sorted(sources.items()):
        parsed.append((module, f"{module.replace('.', '/')}.py", source))
    _build(project, parsed)
    return project


def build_project(paths: Iterable[Path | str]) -> Project:
    """Build from files/directories on disk (the CLI's entry)."""
    project = Project()
    parsed: list[tuple[str, str, str]] = []
    for file_path in iter_python_files(Path(p) for p in paths):
        parsed.append(
            (module_name_for(file_path), str(file_path), file_path.read_text())
        )
    _build(project, parsed)
    return project


# -- construction -----------------------------------------------------------


def _build(project: Project, parsed: list[tuple[str, str, str]]) -> None:
    # Phase 1: parse everything, register functions/classes/globals, so
    # phase 2 can resolve forward references across modules.
    for module, path, source in parsed:
        ctx = FileContext.from_source(source, path)
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as error:
            project.syntax_errors.append(
                LintFinding(
                    path,
                    error.lineno or 1,
                    error.offset or 0,
                    "REP000",
                    f"syntax error: {error.msg}",
                )
            )
            continue
        info = ModuleInfo(module=module, path=path, source=source, tree=tree, ctx=ctx)
        project.modules[module] = info
        _register_defs(project, info, tree, prefix=(), class_qualname=None)
        _collect_module_globals(info)

    # Phase 2: aliases (need the full module set), then call sites.
    for info in project.modules.values():
        _collect_aliases(project, info)
    for info in project.modules.values():
        _collect_class_state(project, info)
    for function in project.functions.values():
        _collect_calls(project, function)


def _register_defs(
    project: Project,
    info: ModuleInfo,
    node: ast.AST,
    prefix: tuple[str, ...],
    class_qualname: str | None,
) -> None:
    for child in ast.iter_child_nodes(node):
        if isinstance(child, _DEF_NODES):
            qualname = ".".join((info.module, *prefix, child.name))
            function = FunctionInfo(
                qualname=qualname,
                module=info.module,
                name=child.name,
                class_qualname=class_qualname,
                path=info.path,
                lineno=child.lineno,
                is_async=isinstance(child, ast.AsyncFunctionDef),
                node=child,
            )
            project.functions[qualname] = function
            project.by_name.setdefault(child.name, []).append(qualname)
            # Nested defs keep the enclosing class for ``self`` calls.
            _register_defs(
                project, info, child, (*prefix, child.name), class_qualname
            )
        elif isinstance(child, ast.ClassDef):
            qualname = ".".join((info.module, *prefix, child.name))
            _register_defs(project, info, child, (*prefix, child.name), qualname)


def _collect_aliases(project: Project, info: ModuleInfo) -> None:
    package = info.module.rsplit(".", 1)[0] if "." in info.module else ""
    for node in ast.walk(info.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                info.aliases[local] = ("module", target)
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                up = package
                for _ in range(node.level - 1):
                    up = up.rsplit(".", 1)[0] if "." in up else ""
                base = f"{up}.{node.module}" if node.module else up
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                dotted = f"{base}.{alias.name}" if base else alias.name
                kind = "module" if dotted in project.modules else "obj"
                info.aliases[local] = (kind, dotted)


_MUTABLE_FACTORIES = frozenset({"dict", "list", "set", "deque", "defaultdict", "Counter", "OrderedDict"})


def _collect_module_globals(info: ModuleInfo) -> None:
    for node in info.tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if value is None:
            continue
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            if _is_contextvar_call(value):
                info.contextvars.add(target.id)
            elif isinstance(value, (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp, ast.SetComp)):
                info.container_globals[target.id] = node.lineno
            elif (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id in _MUTABLE_FACTORIES
            ):
                info.container_globals[target.id] = node.lineno
            elif isinstance(value, ast.Constant) and type(value.value) is int:
                info.int_globals[target.id] = node.lineno


def _is_contextvar_call(value: ast.expr) -> bool:
    if not isinstance(value, ast.Call):
        return False
    func = value.func
    if isinstance(func, ast.Name) and func.id == "ContextVar":
        return True
    return isinstance(func, ast.Attribute) and func.attr == "ContextVar"


def _collect_class_state(project: Project, info: ModuleInfo) -> None:
    """Find ``self.X = open(...)`` / ``self.X = ContextVar(...)`` binds
    anywhere in a class so method bodies can classify attr accesses."""
    for function in project.functions.values():
        if function.module != info.module or function.class_qualname is None:
            continue
        for node in iter_own_nodes(function.node):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                if any(
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Name)
                    and sub.func.id == "open"
                    for sub in ast.walk(node.value)
                ):
                    project.file_handles.setdefault(
                        function.class_qualname, set()
                    ).add(target.attr)
                if _is_contextvar_call(node.value) or (
                    isinstance(node.value, ast.Call)
                    and any(
                        _is_contextvar_call(sub)
                        for sub in ast.walk(node.value)
                        if isinstance(sub, ast.Call)
                    )
                ):
                    project.attr_contextvars.add(
                        (function.class_qualname, target.attr)
                    )


_SPAWN_NAMES = frozenset({"create_task", "ensure_future"})
_BOUNDARY_ATTRS = frozenset({"run_in_executor", "to_thread", "submit"})
_THREAD_FACTORIES = frozenset({"Thread", "Process"})


def _collect_calls(project: Project, function: FunctionInfo) -> None:
    info = project.modules[function.module]
    parents: dict[ast.AST, ast.AST] = {}
    for node in iter_own_nodes(function.node):
        for child in ast.iter_child_nodes(node):
            parents[child] = node

    sites: list[CallSite] = []
    for node in iter_own_nodes(function.node):
        if not isinstance(node, ast.Call):
            continue
        boundary_target = _boundary_callable(node)
        if boundary_target is not None:
            for target in _resolve(project, info, function, boundary_target):
                project.thread_roots.add(target)
            continue
        targets, confident = _resolve_call(project, info, function, node.func)
        if not targets:
            continue
        awaited = isinstance(parents.get(node), ast.Await)
        spawned = _is_spawn_argument(node, parents)
        sites.append(
            CallSite(
                caller=function.qualname,
                lineno=node.lineno,
                col=node.col_offset,
                targets=targets,
                confident=confident,
                awaited=awaited,
                spawned=spawned,
                node=node,
            )
        )
    if sites:
        project.calls[function.qualname] = sites


def _boundary_callable(node: ast.Call) -> ast.expr | None:
    """The callable expression handed across an executor/thread
    boundary by this call, if any."""
    func = node.func
    if isinstance(func, ast.Attribute):
        if func.attr == "run_in_executor" and len(node.args) >= 2:
            return node.args[1]
        if func.attr in {"to_thread", "submit"} and node.args:
            return node.args[0]
        if func.attr in _THREAD_FACTORIES:
            for keyword in node.keywords:
                if keyword.arg == "target":
                    return keyword.value
    if isinstance(func, ast.Name) and func.id in _THREAD_FACTORIES:
        for keyword in node.keywords:
            if keyword.arg == "target":
                return keyword.value
    return None


def _is_spawn_argument(node: ast.Call, parents: dict[ast.AST, ast.AST]) -> bool:
    parent = parents.get(node)
    if not isinstance(parent, ast.Call):
        return False
    func = parent.func
    name = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", "")
    return name in _SPAWN_NAMES and node in parent.args


def _resolve(
    project: Project,
    info: ModuleInfo,
    function: FunctionInfo,
    expr: ast.expr,
) -> tuple[str, ...]:
    targets, _ = _resolve_call(project, info, function, expr)
    return targets


def _resolve_call(
    project: Project,
    info: ModuleInfo,
    function: FunctionInfo,
    func: ast.expr,
) -> tuple[tuple[str, ...], bool]:
    """Resolve a call's callee expression to project qualnames.

    Returns ``(targets, confident)``; confident resolutions come from
    explicit names, ``self.``, or module aliases.
    """
    if isinstance(func, ast.Name):
        alias = info.aliases.get(func.id)
        if alias is not None:
            kind, dotted = alias
            if kind == "obj" and dotted in project.functions:
                return (dotted,), True
            return (), True
        qualname = f"{info.module}.{func.id}"
        if qualname in project.functions:
            return (qualname,), True
        return (), True

    if isinstance(func, ast.Attribute):
        attr = func.attr
        if attr.startswith("__"):
            return (), True
        value = func.value
        if isinstance(value, ast.Name):
            if value.id == "self" and function.class_qualname is not None:
                qualname = f"{function.class_qualname}.{attr}"
                if qualname in project.functions:
                    return (qualname,), True
                # fall through to the union: a method the class inherits
                # or receives by injection still has a name.
            else:
                alias = info.aliases.get(value.id)
                if alias is not None:
                    kind, dotted = alias
                    if kind == "module":
                        qualname = f"{dotted}.{attr}"
                        if qualname in project.functions:
                            return (qualname,), True
                        # Known import alias, not a project function:
                        # stdlib/third-party -- do not union.
                        return (), True
        if attr in UNION_DENY:
            return (), False
        candidates = project.by_name.get(attr, ())
        if 0 < len(candidates) <= UNION_CAP:
            return tuple(sorted(candidates)), False
        return (), False

    return (), False
