"""Machine-readable output for ``repro check``: JSON and SARIF 2.1.0.

The JSON document is the stable programmatic surface (CI scripts,
dashboards); SARIF is the interchange format code-review UIs ingest.
Both carry the full rule metadata table so consumers can render
summaries without importing this package.
"""

from __future__ import annotations

import json
from typing import Iterable, Mapping

from repro.checks.lint import LintFinding

__all__ = ["RULE_INDEX", "to_json", "to_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemas/sarif-schema-2.1.0.json"
)


def _rule_index() -> dict[str, tuple[str, str]]:
    """code -> (name, summary) over every registered rule family."""
    from repro.checks.concurrency import CONCURRENCY_RULES
    from repro.checks.contracts import CONTRACT_RULES
    from repro.checks.rules import ALL_RULES

    index: dict[str, tuple[str, str]] = {
        "REP000": ("syntax-error", "file failed to parse"),
    }
    for rule_cls in ALL_RULES:
        index[rule_cls.code] = (rule_cls.name, rule_cls.summary)
    index.update(CONCURRENCY_RULES)
    index.update(CONTRACT_RULES)
    return index


def RULE_INDEX() -> dict[str, tuple[str, str]]:
    return _rule_index()


def to_json(
    findings: Iterable[LintFinding], summary: Mapping[str, object] | None = None
) -> str:
    findings = sorted(findings, key=lambda f: f.sort_key)
    index = _rule_index()
    document = {
        "version": 1,
        "summary": dict(summary or {}),
        "rules": {
            code: {"name": name, "summary": text}
            for code, (name, text) in sorted(index.items())
        },
        "findings": [
            {
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "code": f.code,
                "name": index.get(f.code, (f.code, ""))[0],
                "message": f.message,
            }
            for f in findings
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def to_sarif(findings: Iterable[LintFinding]) -> str:
    findings = sorted(findings, key=lambda f: f.sort_key)
    index = _rule_index()
    used_codes = sorted({f.code for f in findings} | set(index))
    rules = [
        {
            "id": code,
            "name": index.get(code, (code, ""))[0],
            "shortDescription": {"text": index.get(code, (code, ""))[1] or code},
        }
        for code in used_codes
    ]
    rule_order = {code: position for position, code in enumerate(used_codes)}
    results = [
        {
            "ruleId": f.code,
            "ruleIndex": rule_order[f.code],
            "level": "error",
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": f.path.replace("\\", "/")},
                        "region": {
                            "startLine": f.line,
                            "startColumn": max(f.col, 0) + 1,
                        },
                    }
                }
            ],
        }
        for f in findings
    ]
    document = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-check",
                        "informationUri": "https://example.invalid/repro-checks",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"
