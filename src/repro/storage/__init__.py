"""Storage accounting (Table 2) and SRAM latency modelling (Table 4)."""

from repro.storage.bits import (
    StorageRow,
    baseline_storage_row,
    pdede_storage_row,
    storage_table,
    verify_design_storage,
)
from repro.storage.cacti import access_cycles, access_time_ns, serial_access_time_ns
from repro.storage.energy import (
    EnergyEstimate,
    access_energy,
    baseline_energy,
    leakage_power,
    pdede_energy,
)

__all__ = [
    "StorageRow",
    "baseline_storage_row",
    "pdede_storage_row",
    "storage_table",
    "verify_design_storage",
    "access_cycles",
    "access_time_ns",
    "serial_access_time_ns",
    "EnergyEstimate",
    "access_energy",
    "baseline_energy",
    "leakage_power",
    "pdede_energy",
]
