"""Analytical SRAM access-time model (the Table 4 substrate).

The paper uses CACTI 7 at 22 nm to compare the access latency of the
baseline BTB against PDede's BTBM + Page-BTB chain, for 1 and 6
read-write ports.  CACTI itself is a large C++ tool; for latency
*comparisons* all that matters is that access time grows with array
capacity (wordline/bitline length ~ sqrt(area)) and with port count
(each extra port widens the cell and lengthens the wires).  We use

    t(c, p) = (a + b * sqrt(c_kib)) * (1 + (p - 1) * (k1 + k2 * sqrt(c_kib)))

with coefficients fitted to the four published Table 4 points; the fit
reproduces them to within ~0.02 ns and extrapolates monotonically.
"""

from __future__ import annotations

import math

#: Fit coefficients (ns), calibrated against the paper's Table 4.
_A = 0.041
_B = 0.0325
_K1 = 0.0768
_K2 = 0.0528


def access_time_ns(capacity_bits: int, ports: int = 1) -> float:
    """SRAM access time at 22 nm for the given capacity and RW ports."""
    if capacity_bits <= 0:
        raise ValueError("capacity must be positive")
    if ports < 1:
        raise ValueError("need at least one port")
    capacity_kib = capacity_bits / 8192.0
    root = math.sqrt(capacity_kib)
    base = _A + _B * root
    port_factor = 1.0 + (ports - 1) * (_K1 + _K2 * root)
    return base * port_factor


def access_cycles(capacity_bits: int, ports: int = 1, frequency_ghz: float = 3.9) -> int:
    """Access latency in (ceil) core cycles at the given frequency."""
    return max(1, math.ceil(access_time_ns(capacity_bits, ports) * frequency_ghz))


def serial_access_time_ns(component_bits: list[int], ports: int = 1) -> float:
    """Access time of structures read back-to-back (BTBM then Page-BTB)."""
    return sum(access_time_ns(bits, ports) for bits in component_bits)
