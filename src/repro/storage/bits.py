"""Bit-level storage accounting: the Table 2 generator.

Builds per-component storage breakdowns for the baseline BTB and every
PDede configuration so the iso-storage claim can be checked (and so the
iso-MPKI experiments can search over budgets).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.branch.address import (
    ADDRESS_BITS,
    OFFSET_BITS,
    PAGE_BITS,
    PAGE_IN_REGION_BITS,
    REGION_BITS,
)
from repro.btb.baseline import BaselineBTB
from repro.core.config import PDedeConfig, PDedeMode

#: Declared bit widths of every architectural field, by the constant
#: names used throughout the codebase.  The determinism linter's
#: bit-width rule (REP006 in :mod:`repro.checks.rules`) constant-folds
#: shift/mask expressions against these, and the runtime sanitizer's
#: field-width invariant checks stored values against the same widths --
#: one registry, two enforcement points.
DECLARED_FIELD_WIDTHS: dict[str, int] = {
    "ADDRESS_BITS": ADDRESS_BITS,
    "OFFSET_BITS": OFFSET_BITS,
    "PAGE_IN_REGION_BITS": PAGE_IN_REGION_BITS,
    "REGION_BITS": REGION_BITS,
    "PAGE_BITS": PAGE_BITS,
}

#: Hard ceiling on any shift amount or mask width in the model: the
#: address arithmetic is 64-bit (``mix64``), so a folded shift or mask
#: beyond this is a bug, not a wide field.
MAX_MODEL_BITS = 64


@dataclass
class StorageRow:
    """One Table 2 row: a design and its per-component bit budget."""

    name: str
    components: dict[str, int] = field(default_factory=dict)

    @property
    def total_bits(self) -> int:
        return sum(self.components.values())

    @property
    def total_kib(self) -> float:
        return self.total_bits / 8192.0


def baseline_storage_row(
    entries: int = 4096,
    ways: int = 8,
    tag_bits: int = 12,
    target_bits: int = ADDRESS_BITS,
    srrip_bits: int = 3,
    conf_bits: int = 2,
    pid_bits: int = 1,
    name: str = "Baseline BTB",
) -> StorageRow:
    """Per-entry breakdown of the conventional BTB (Figure 2's fields)."""
    return StorageRow(
        name=name,
        components={
            "pid": entries * pid_bits,
            "tags": entries * tag_bits,
            "targets": entries * target_bits,
            "srrip": entries * srrip_bits,
            "confidence": entries * conf_bits,
        },
    )


def pdede_storage_row(config: PDedeConfig, name: str | None = None) -> StorageRow:
    """Per-component breakdown of a PDede configuration."""
    if name is None:
        name = f"PDede ({config.mode.value})"
    components = {
        "btbm": config.btbm_bits(),
        "page-btb": config.page_btb_bits(),
        "region-btb": config.region_btb_bits(),
    }
    return StorageRow(name=name, components=components)


def storage_table(configs: dict[PDedeMode, PDedeConfig] | None = None) -> list[StorageRow]:
    """The full Table 2: baseline plus the three PDede designs."""
    from repro.core.config import paper_config

    if configs is None:
        configs = {mode: paper_config(mode) for mode in PDedeMode}
    rows = [baseline_storage_row()]
    for mode in PDedeMode:
        if mode in configs:
            rows.append(pdede_storage_row(configs[mode]))
    return rows


def verify_design_storage(design) -> int:
    """Cross-check a live design object's ``storage_bits()``.

    Accepts any object exposing ``storage_bits`` and returns the value;
    exists so tests can assert model-vs-accounting consistency for
    designs like :class:`~repro.btb.baseline.BaselineBTB`.
    """
    if isinstance(design, BaselineBTB):
        row = baseline_storage_row(
            entries=design.entries,
            ways=design.ways,
            tag_bits=design.tag_bits,
            target_bits=design.target_bits,
            srrip_bits=design.srrip_bits,
            conf_bits=design.conf_bits,
            pid_bits=design.pid_bits,
        )
        assert row.total_bits == design.storage_bits()
    return design.storage_bits()
