"""First-order SRAM energy model (the paper's "area and energy savings").

Section 5.8/5.12 argue PDede's iso-MPKI configurations save storage "and
as such area and energy".  This model quantifies that: per-access dynamic
energy grows with the square root of array capacity (bitline/wordline
length), leakage power grows linearly with capacity, and a partitioned
design pays only for the components an access actually touches (the
delta path never reads the Page-/Region-BTB).

Coefficients are normalised so the 37.5 KiB baseline BTB reads at 1.0
energy units per access -- the model compares designs, it does not claim
absolute joules.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

_BASELINE_BITS = 4096 * 75


def access_energy(capacity_bits: int) -> float:
    """Dynamic read energy of one array access (baseline read = 1.0)."""
    if capacity_bits <= 0:
        raise ValueError("capacity must be positive")
    return math.sqrt(capacity_bits / _BASELINE_BITS)


def leakage_power(capacity_bits: int) -> float:
    """Static leakage (baseline array = 1.0)."""
    if capacity_bits <= 0:
        raise ValueError("capacity must be positive")
    return capacity_bits / _BASELINE_BITS


@dataclass
class EnergyEstimate:
    """Per-design energy summary over one simulated run."""

    name: str
    dynamic_energy: float
    leakage: float
    accesses: int

    @property
    def energy_per_access(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.dynamic_energy / self.accesses


def baseline_energy(lookups: int) -> EnergyEstimate:
    """Energy of a conventional BTB serving ``lookups`` accesses."""
    return EnergyEstimate(
        name="baseline",
        dynamic_energy=lookups * access_energy(_BASELINE_BITS),
        leakage=leakage_power(_BASELINE_BITS),
        accesses=lookups,
    )


def pdede_energy(
    config,
    lookups: int,
    pointer_lookups: int,
) -> EnergyEstimate:
    """Energy of a PDede design.

    Every lookup reads the BTBM; only ``pointer_lookups`` (different-page
    hits) additionally read the Page- and Region-BTBs -- the delta path's
    energy advantage on top of its latency advantage.
    """
    if pointer_lookups > lookups:
        raise ValueError("pointer_lookups cannot exceed lookups")
    btbm = access_energy(config.btbm_bits())
    page = access_energy(config.page_btb_bits())
    region = access_energy(config.region_btb_bits())
    dynamic = lookups * btbm + pointer_lookups * (page + region)
    total_bits = config.storage_bits()
    return EnergyEstimate(
        name=f"pdede-{config.mode.value}",
        dynamic_energy=dynamic,
        leakage=leakage_power(total_bits),
        accesses=lookups,
    )
