"""Join the request-event log with metrics into a telemetry report.

The event log (:mod:`repro.obs.events`) records every serve request's
hop trail; the metrics registry (:mod:`repro.obs.metrics`) records the
bucketed latency aggregates.  This module joins the two into the
per-outcome serve telemetry report that ``benchmarks/bench_serve.py``
writes and the CI ``serve-slo`` job uploads:

* **per-outcome latency** -- exact p50/p95/p99 computed from the
  ``respond`` events' recorded seconds (the event log keeps true
  samples, so no bucket interpolation is needed here), split by cache
  outcome (``memo`` / ``disk`` / ``fresh``) and error code;
* **hop decomposition** -- mean batch-wait (time in the open
  micro-batch window) vs. executor-queue vs. simulate time, answering
  "where does a slow request spend its time?";
* **request reconstruction** -- :func:`reconstruct` returns one
  request's full hop sequence by correlation id (what the e2e test and
  `/debug/trace?rid=` assert on).

Everything operates on plain record dicts, so the input can come from a
live :class:`~repro.obs.events.EventLog` ring, a ``/debug/trace``
response, or a JSONL sink file read back with :func:`read_events`.
"""

from __future__ import annotations

import json

__all__ = [
    "aggregate",
    "read_events",
    "reconstruct",
    "render_markdown",
]

#: Hop-timing attributes of ``respond`` events, report column order.
_HOP_FIELDS = ("batch_wait_s", "queue_s", "simulate_s")


def read_events(path: str) -> list[dict]:
    """Parse an event-log JSONL sink back into records."""
    records = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def reconstruct(records: list[dict], rid: str) -> list[dict]:
    """One request's hop sequence, in emission order.

    Matches records tagged with ``rid`` directly or through a shared
    ``rids`` list (batch executions), exactly like
    ``EventLog.for_request`` -- but usable on any record list (a sink
    file, a ``/debug/trace`` response).
    """
    return [
        record
        for record in records
        if record.get("rid") == rid or rid in (record.get("rids") or ())
    ]


def _exact_percentile(samples: list[float], q: float) -> float:
    """Nearest-rank percentile over true samples (not bucket-estimated)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, round(q / 100.0 * len(ordered)) - 1))
    return ordered[rank]


def aggregate(records: list[dict], metrics_snapshot: dict | None = None) -> dict:
    """Fold an event-record list into the serve telemetry summary.

    Only ``respond`` events carry request latency; everything else
    contributes counts.  Returns a JSON-ready dict::

        {
          "requests": <total respond events>,
          "errors": <respond events with status >= 500>,
          "error_rate": ...,
          "shed": <429 respond events>,
          "by_outcome": {outcome: {count, p50_s, p95_s, p99_s, mean_s,
                                   mean_batch_wait_s, mean_queue_s,
                                   mean_simulate_s}},
          "events": {event name: count},
          "metrics": <metrics_snapshot, passed through>,
        }
    """
    responds = [r for r in records if r.get("event") == "respond"]
    by_outcome: dict[str, list[dict]] = {}
    for record in responds:
        by_outcome.setdefault(str(record.get("outcome", "?")), []).append(record)

    outcome_stats: dict[str, dict] = {}
    for outcome, group in sorted(by_outcome.items()):
        seconds = [r["seconds"] for r in group if "seconds" in r]
        entry: dict = {
            "count": len(group),
            "p50_s": _exact_percentile(seconds, 50),
            "p95_s": _exact_percentile(seconds, 95),
            "p99_s": _exact_percentile(seconds, 99),
            "mean_s": sum(seconds) / len(seconds) if seconds else 0.0,
        }
        for hop in _HOP_FIELDS:
            values = [r[hop] for r in group if hop in r]
            entry[f"mean_{hop}"] = sum(values) / len(values) if values else 0.0
        outcome_stats[outcome] = entry

    event_counts: dict[str, int] = {}
    for record in records:
        name = str(record.get("event", "?"))
        event_counts[name] = event_counts.get(name, 0) + 1

    errors = sum(1 for r in responds if r.get("status", 0) >= 500)
    shed = sum(1 for r in responds if r.get("status", 0) == 429)
    total = len(responds)
    summary = {
        "requests": total,
        "errors": errors,
        "error_rate": errors / total if total else 0.0,
        "shed": shed,
        "by_outcome": outcome_stats,
        "events": dict(sorted(event_counts.items())),
    }
    if metrics_snapshot is not None:
        summary["metrics"] = metrics_snapshot
    return summary


def _ms(seconds: float) -> str:
    return f"{seconds * 1000:.2f}"


def render_markdown(summary: dict, title: str = "Serve telemetry") -> str:
    """The aggregate summary as a markdown report (the CI artifact)."""
    lines = [
        f"# {title}",
        "",
        f"- requests: {summary['requests']}",
        f"- errors (5xx): {summary['errors']} "
        f"(rate {summary['error_rate']:.4f})",
        f"- shed (429): {summary['shed']}",
        "",
        "## Latency by outcome (ms)",
        "",
        "| outcome | count | p50 | p95 | p99 | mean "
        "| batch-wait | queue | simulate |",
        "|---|---|---|---|---|---|---|---|---|",
    ]
    for outcome, entry in summary["by_outcome"].items():
        lines.append(
            f"| {outcome} | {entry['count']} | {_ms(entry['p50_s'])} "
            f"| {_ms(entry['p95_s'])} | {_ms(entry['p99_s'])} "
            f"| {_ms(entry['mean_s'])} | {_ms(entry['mean_batch_wait_s'])} "
            f"| {_ms(entry['mean_queue_s'])} | {_ms(entry['mean_simulate_s'])} |"
        )
    lines.extend(["", "## Event counts", ""])
    for name, count in summary["events"].items():
        lines.append(f"- `{name}`: {count}")
    lines.append("")
    return "\n".join(lines)
