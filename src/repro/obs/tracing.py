"""Structured event tracing: nested spans with a JSONL sink.

Wraps the coarse phases of a run -- trace generation, warmup+simulation,
aggregation, report sections -- in *spans*: named, attributed intervals
with wall-clock duration and (optionally) the ``tracemalloc`` peak while
the span was open.  Spans nest; the completed tree serialises to JSONL
(one record per span, pre-order) and renders as a human-readable tree.

Like :mod:`repro.obs.metrics`, the module-level default tracer is a
shared null object: ``get_tracer().span(...)`` is a no-op context
manager until tracing is enabled, so call sites are unconditional and
the disabled cost is one dict lookup plus an empty ``with``.

The open-span stack lives in a :class:`contextvars.ContextVar`, so
concurrent asyncio tasks (and threads) each see their own stack:
interleaved tasks record correct parent ids instead of adopting
whichever span another task happened to open last.  Tasks inherit the
stack of the context that spawned them (their spans nest under the
spawner's open span); spans opened on a fresh thread become roots.
Tree mutation (id allocation, root/child appends) is serialised by one
lock, so the JSONL sink stays well-formed under concurrency.
"""

from __future__ import annotations

import contextvars
import itertools
import json
import threading
import time
from contextlib import contextmanager

#: Distinct debug names for each Tracer's stack contextvar.
_TRACER_SEQ = itertools.count(1)

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "get_tracer",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
    "use_tracer",
    "read_jsonl",
]


class Span:
    """One named interval in the trace tree."""

    __slots__ = (
        "span_id",
        "parent_id",
        "depth",
        "name",
        "attrs",
        "start_s",
        "seconds",
        "memory_peak_kib",
        "children",
    )

    def __init__(
        self,
        span_id: int,
        parent_id: int | None,
        depth: int,
        name: str,
        attrs: dict,
        start_s: float,
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.depth = depth
        self.name = name
        self.attrs = attrs
        self.start_s = start_s
        self.seconds = 0.0
        self.memory_peak_kib: float | None = None
        self.children: list[Span] = []

    def annotate(self, **attrs) -> None:
        """Attach (or overwrite) attributes on an open or closed span."""
        self.attrs.update(attrs)

    def to_record(self) -> dict:
        record = {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "name": self.name,
            "start_s": round(self.start_s, 6),
            "seconds": round(self.seconds, 6),
            "attrs": self.attrs,
        }
        if self.memory_peak_kib is not None:
            record["memory_peak_kib"] = round(self.memory_peak_kib, 1)
        return record


class Tracer:
    """Recording tracer: builds the span tree as code runs."""

    enabled = True

    def __init__(self, trace_memory: bool = False) -> None:
        self.trace_memory = trace_memory
        self.roots: list[Span] = []
        # Per-context open-span stack: asyncio tasks and threads each
        # get their own, so concurrent spans keep correct parentage.
        self._stack_var: contextvars.ContextVar[tuple[Span, ...]] = (
            contextvars.ContextVar(
                f"repro_tracer_stack_{next(_TRACER_SEQ)}", default=()
            )
        )
        self._lock = threading.Lock()
        self._next_id = 1
        self._epoch = time.perf_counter()
        #: Optional callback fired with each span as it closes (the CLI
        #: hooks this for ``--progress`` status lines).
        self.on_close = None
        self._tracemalloc_started = False
        if trace_memory:
            import tracemalloc

            if not tracemalloc.is_tracing():
                tracemalloc.start()
                self._tracemalloc_started = True

    # -- recording ----------------------------------------------------------

    def _open_span(self, name: str, attrs: dict, stack: tuple[Span, ...]) -> Span:
        """Allocate a span under the given stack's tip (tree mutation is
        locked; concurrent tasks/threads append to the same parent)."""
        parent = stack[-1] if stack else None
        with self._lock:
            span = Span(
                span_id=self._next_id,
                parent_id=parent.span_id if parent else None,
                depth=len(stack),
                name=name,
                attrs=attrs,
                start_s=time.perf_counter() - self._epoch,
            )
            self._next_id += 1
            if parent is not None:
                parent.children.append(span)
            else:
                self.roots.append(span)
        return span

    @contextmanager
    def span(self, name: str, **attrs):
        stack = self._stack_var.get()
        span = self._open_span(name, attrs, stack)
        token = self._stack_var.set(stack + (span,))
        if self.trace_memory:
            import tracemalloc

            tracemalloc.reset_peak()
        started = time.perf_counter()
        try:
            yield span
        finally:
            span.seconds = time.perf_counter() - started
            if self.trace_memory:
                import tracemalloc

                _, peak = tracemalloc.get_traced_memory()
                span.memory_peak_kib = peak / 1024.0
            self._stack_var.reset(token)
            if self.on_close is not None:
                self.on_close(span)

    def event(self, name: str, **attrs) -> Span:
        """Record an instantaneous (zero-duration) span."""
        return self._open_span(name, attrs, self._stack_var.get())

    def current(self) -> Span | None:
        stack = self._stack_var.get()
        return stack[-1] if stack else None

    # -- serialisation ------------------------------------------------------

    def spans(self):
        """All recorded spans, pre-order (parents before children)."""
        stack = list(reversed(self.roots))
        while stack:
            span = stack.pop()
            yield span
            stack.extend(reversed(span.children))

    def to_records(self) -> list[dict]:
        return [span.to_record() for span in self.spans()]

    def write_jsonl(self, path: str) -> None:
        """One JSON object per span, pre-order -- the ``--trace-out`` sink."""
        with open(path, "w") as handle:
            for record in self.to_records():
                handle.write(json.dumps(record, sort_keys=True))
                handle.write("\n")

    def render_tree(self) -> str:
        """Human-readable indented tree with durations and attributes."""
        lines = []
        for span in self.spans():
            attrs = " ".join(f"{k}={v}" for k, v in span.attrs.items())
            memory = (
                f" peak={span.memory_peak_kib:.0f}KiB"
                if span.memory_peak_kib is not None
                else ""
            )
            lines.append(
                f"{'  ' * span.depth}{span.name:<24s} {span.seconds:8.3f}s"
                f"{memory}{'  ' + attrs if attrs else ''}"
            )
        return "\n".join(lines)

    def total_seconds(self) -> float:
        return sum(span.seconds for span in self.roots)

    def close(self) -> None:
        """Stop tracemalloc if this tracer started it."""
        if self._tracemalloc_started:
            import tracemalloc

            tracemalloc.stop()
            self._tracemalloc_started = False


def read_jsonl(path: str) -> list[dict]:
    """Parse a ``--trace-out`` file back into span records."""
    records = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


class _NullSpan:
    """Stand-in yielded by the null tracer's ``span``."""

    __slots__ = ()
    name = ""
    attrs: dict = {}
    seconds = 0.0

    def annotate(self, **attrs) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled-mode tracer: spans are free, nothing is recorded."""

    enabled = False
    trace_memory = False
    on_close = None

    @contextmanager
    def span(self, name: str, **attrs):
        yield _NULL_SPAN

    def event(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def current(self) -> None:
        return None

    def spans(self):
        return iter(())

    def to_records(self) -> list:
        return []

    def write_jsonl(self, path: str) -> None:
        with open(path, "w"):
            pass

    def render_tree(self) -> str:
        return ""

    def total_seconds(self) -> float:
        return 0.0

    def close(self) -> None:
        pass


_NULL_TRACER = NullTracer()
_active: Tracer | NullTracer = _NULL_TRACER


def get_tracer() -> Tracer | NullTracer:
    """The active tracer (the shared null object when disabled)."""
    return _active


def tracing_enabled() -> bool:
    return _active.enabled


def enable_tracing(
    tracer: Tracer | None = None, trace_memory: bool = False
) -> Tracer:
    """Install (and return) a recording tracer as the active one."""
    global _active
    _active = tracer or Tracer(trace_memory=trace_memory)
    return _active


def disable_tracing() -> None:
    """Restore the no-op null tracer."""
    global _active
    if isinstance(_active, Tracer):
        _active.close()
    _active = _NULL_TRACER


@contextmanager
def use_tracer(tracer: Tracer | NullTracer):
    """Temporarily install ``tracer`` (tests and scoped CLI runs)."""
    global _active
    previous = _active
    _active = tracer
    try:
        yield tracer
    finally:
        _active = previous
