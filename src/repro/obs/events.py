"""Structured request-event log: bounded ring buffer + JSONL sink.

The third leg of the observability layer, next to
:mod:`repro.obs.metrics` (aggregates) and :mod:`repro.obs.tracing`
(nested wall-clock spans).  Where a span tree describes one *process
phase*, the event log describes one *request*: every hop a serve
request takes through admission, batch formation, execution, the cache
hierarchy, and the response is one flat, timestamped record tagged with
the request's **correlation id**, so a slow or failed request can be
reconstructed hop-by-hop long after it completed.

Design constraints (matching ``repro.obs.metrics``):

* **dependency-free** -- records are plain JSON-serialisable dicts;
* **null object when disabled** -- the module-level default log is a
  shared no-op, so emitters never branch on an "is tracing on?" flag;
* **bounded memory** -- the recording log is a ring (``deque`` with
  ``maxlen``); the oldest records fall off under sustained load and a
  ``dropped`` counter records the loss honestly.  An optional JSONL
  sink persists *every* record (one JSON object per line) for offline
  aggregation (:mod:`repro.obs.aggregate`);
* **thread-safe and non-blocking** -- one lock serialises ring appends;
  sink records go through an unbounded queue to a dedicated writer
  thread, so emitters (including the asyncio loop thread -- the serve
  handlers emit per hop) never wait on file I/O.  :meth:`close` drains
  the queue before closing, so nothing buffered is lost.

Correlation ids travel two ways: explicitly (``emit(..., rid=...)``
where the caller knows the request) and via **context binding**
(:func:`bind_rids`), which lets deep layers -- the harness, the disk
cache, the shard scheduler -- tag their events with the requests of the
batch currently executing on their thread without threading ids through
every call signature.
"""

from __future__ import annotations

import contextvars
import itertools
import json
import os
import queue
import threading
import time
from collections import deque
from contextlib import contextmanager

__all__ = [
    "EventLog",
    "NullEventLog",
    "bind_rids",
    "current_rids",
    "disable_events",
    "emit",
    "enable_events",
    "events_enabled",
    "get_event_log",
    "new_request_id",
    "use_event_log",
]

#: Default ring capacity -- at ~6 hops per serve request this holds the
#: last ~680 requests, plenty for a `/debug/trace` postmortem.
DEFAULT_CAPACITY = 4096

#: Per-process correlation-id sequence (the pid prefix keeps ids unique
#: across forked scheduler workers).
_RID_COUNTER = itertools.count(1)

#: Correlation ids bound to the current execution context (asyncio task
#: or worker thread); deep layers read these via :func:`current_rids`.
_BOUND_RIDS: contextvars.ContextVar[tuple[str, ...]] = contextvars.ContextVar(
    "repro_obs_bound_rids", default=()
)


def new_request_id(prefix: str = "r") -> str:
    """A process-unique correlation id (``r<pid hex>-<sequence>``)."""
    return f"{prefix}{os.getpid():x}-{next(_RID_COUNTER):06d}"


@contextmanager
def bind_rids(*rids: str):
    """Bind correlation ids to the current context (thread or task).

    Events emitted through :func:`emit` while the binding is active are
    tagged with these ids automatically -- the serving layer binds a
    batch's request ids around the batch runner so harness / disk-cache /
    scheduler hops land in every member request's trace.
    """
    token = _BOUND_RIDS.set(tuple(rids))
    try:
        yield
    finally:
        _BOUND_RIDS.reset(token)


def current_rids() -> tuple[str, ...]:
    """The correlation ids bound to the current context (may be empty)."""
    return _BOUND_RIDS.get()


#: Queue sentinel telling the sink writer thread to drain and exit.
_SINK_CLOSE = object()


class EventLog:
    """Recording log: bounded ring plus an optional JSONL file sink."""

    enabled = True

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        sink_path: str | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.sink_path = sink_path
        self._ring: deque[dict] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._emitted = 0
        self._dropped = 0
        self._closed = False
        self._sink = open(sink_path, "a") if sink_path else None
        # Sink writes happen on a dedicated thread: ``emit`` runs on the
        # asyncio loop (serve hop events), and a synchronous
        # write+flush per record would stall every request behind disk
        # latency.  The queue is unbounded -- the sink exists to keep
        # *everything* the ring drops -- and ``close`` drains it.
        self._sink_queue: queue.SimpleQueue = queue.SimpleQueue()
        self._writer: threading.Thread | None = None
        if self._sink is not None:
            self._writer = threading.Thread(
                target=self._writer_loop, name="repro-events-writer", daemon=True
            )
            self._writer.start()

    def _writer_loop(self) -> None:
        sink = self._sink
        while True:
            record = self._sink_queue.get()
            if record is _SINK_CLOSE:
                break
            sink.write(json.dumps(record, sort_keys=True))
            sink.write("\n")
            # Flush on queue drain rather than per record: bursts
            # coalesce into one syscall, idle sinks stay current.
            if self._sink_queue.empty():
                sink.flush()
        sink.flush()

    # -- recording ----------------------------------------------------------

    def emit(self, event: str, rid: str = "", **attrs) -> dict:
        """Record one event; returns the record (a plain dict).

        ``attrs`` must be JSON-serialisable.  ``rids`` (a list) is the
        conventional attribute for an event shared by several requests
        (a batch execution); :meth:`for_request` matches both forms.
        """
        record: dict = {"ts": round(time.time(), 6), "event": event, "rid": rid}
        record.update(attrs)
        with self._lock:
            if len(self._ring) == self.capacity:
                self._dropped += 1
            self._ring.append(record)
            self._emitted += 1
            enqueue = self._sink is not None and not self._closed
        if enqueue:
            self._sink_queue.put(record)
        return record

    # -- introspection -------------------------------------------------------

    def recent(
        self,
        limit: int | None = None,
        event: str | None = None,
    ) -> list[dict]:
        """The newest buffered records, oldest first (optionally filtered
        by event name, optionally capped to the last ``limit``)."""
        with self._lock:
            records = list(self._ring)
        if event is not None:
            records = [r for r in records if r["event"] == event]
        if limit is not None and limit >= 0:
            records = records[-limit:]
        return records

    def for_request(self, rid: str) -> list[dict]:
        """Every buffered record tagged with ``rid`` -- directly, or as a
        member of a shared ``rids`` list -- in emission order."""
        with self._lock:
            records = list(self._ring)
        return [
            r for r in records
            if r.get("rid") == rid or rid in (r.get("rids") or ())
        ]

    def drain_info(self) -> dict:
        """Ring/sink state: emitted, dropped, buffered, capacity, sink."""
        with self._lock:
            return {
                "enabled": True,
                "emitted": self._emitted,
                "dropped": self._dropped,
                "buffered": len(self._ring),
                "capacity": self.capacity,
                "sink": self.sink_path,
            }

    def clear(self) -> None:
        """Drop buffered records and reset the counters (tests)."""
        with self._lock:
            self._ring.clear()
            self._emitted = 0
            self._dropped = 0

    def close(self) -> None:
        """Drain the writer queue, flush and close the sink (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            sink = self._sink
        if sink is None:
            return
        self._sink_queue.put(_SINK_CLOSE)
        if self._writer is not None:
            self._writer.join(timeout=10.0)
            self._writer = None
        sink.close()
        with self._lock:
            self._sink = None


class NullEventLog:
    """Disabled-mode log: accepts every call, records nothing."""

    enabled = False
    capacity = 0
    sink_path = None

    def emit(self, event: str, rid: str = "", **attrs) -> dict:
        return {}

    def recent(self, limit: int | None = None, event: str | None = None) -> list:
        return []

    def for_request(self, rid: str) -> list:
        return []

    def drain_info(self) -> dict:
        return {
            "enabled": False,
            "emitted": 0,
            "dropped": 0,
            "buffered": 0,
            "capacity": 0,
            "sink": None,
        }

    def clear(self) -> None:
        pass

    def close(self) -> None:
        pass


_NULL_LOG = NullEventLog()
_active: EventLog | NullEventLog = _NULL_LOG


def get_event_log() -> EventLog | NullEventLog:
    """The active event log (the shared null object when disabled)."""
    return _active


def events_enabled() -> bool:
    return _active.enabled


def enable_events(
    log: EventLog | None = None,
    capacity: int = DEFAULT_CAPACITY,
    sink_path: str | None = None,
) -> EventLog:
    """Install (and return) a recording event log as the active one."""
    global _active
    _active = log or EventLog(capacity=capacity, sink_path=sink_path)
    return _active


def disable_events() -> None:
    """Restore the no-op null log (closing the previous sink)."""
    global _active
    if isinstance(_active, EventLog):
        _active.close()
    _active = _NULL_LOG


@contextmanager
def use_event_log(log: EventLog | NullEventLog):
    """Temporarily install ``log`` (tests, scoped serve processes)."""
    global _active
    previous = _active
    _active = log
    try:
        yield log
    finally:
        _active = previous


def emit(event: str, rid: str | None = None, **attrs) -> None:
    """Emit on the active log, auto-tagging bound correlation ids.

    The cheap front door for deep layers: a no-op dict lookup when the
    null log is active.  With no explicit ``rid``, a single bound id
    becomes the record's ``rid``; several bound ids become a ``rids``
    list (the record's own ``rid`` stays empty).
    """
    log = _active
    if not log.enabled:
        return
    if rid is None:
        bound = _BOUND_RIDS.get()
        if len(bound) == 1:
            rid = bound[0]
        else:
            rid = ""
            if bound:
                attrs.setdefault("rids", list(bound))
    log.emit(event, rid=rid, **attrs)
