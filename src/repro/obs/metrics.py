"""Metrics registry: counters, gauges, and histograms with labels.

The observability substrate every structure in the stack publishes into
(BTB occupancy, delta-vs-pointer hit split, resteer causes, harness
cache hits, fork-pool worker seconds, ...).  Design constraints:

* **dependency-free** -- plain dicts, JSON-serialisable snapshots;
* **near-zero overhead when disabled** -- the module-level default
  registry is a shared null object whose instruments ignore every call,
  so publishers never branch on an "is observability on?" flag, and the
  simulator hot loop is never instrumented per event (structures
  publish aggregate counters once per run);
* **get-or-create instruments** -- ``registry.counter(name)`` is
  idempotent, so publishers fetch instruments at publish time and no
  construction-order coupling exists between the registry and the
  simulated structures.

Naming scheme (documented in README "Observability"): snake_case with a
subsystem prefix (``frontend_``, ``btb_``, ``pdede_``, ``icache_``,
``ras_``, ``harness_``, ``scheduler_`` for the shard scheduler's
retry/timeout/steal counters and shard-latency histogram);
monotonically increasing counts end in ``_total``; point-in-time values
(occupancies, ratios) are gauges.  Series are distinguished by labels
(``app=``, ``design=``, ``kind=``, ``outcome=``).
"""

from __future__ import annotations

import json
from contextlib import contextmanager

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "get_registry",
    "enable_metrics",
    "disable_metrics",
    "metrics_enabled",
    "use_registry",
    "percentile_from_buckets",
]

#: Default histogram buckets -- tuned for wall-clock seconds, the layer's
#: dominant histogram use (per-run and per-worker timings).
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0, 300.0
)

#: Serve-tuned buckets: warm `/v1/simulate` hits complete in hundreds of
#: microseconds to a few milliseconds, which the default set lumps into
#: one or two buckets -- percentile interpolation needs the sub-ms
#: resolution below to say anything useful about serving latency.
SERVE_BUCKETS: tuple[float, ...] = (
    0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

#: The percentiles snapshots carry by default.
DEFAULT_PERCENTILES: tuple[float, ...] = (50.0, 95.0, 99.0)


def percentile_from_buckets(
    buckets: tuple[float, ...] | list[float],
    bucket_counts: list[int],
    q: float,
    minimum: float | None = None,
    maximum: float | None = None,
) -> float:
    """Prometheus-style bucket-interpolated percentile estimate.

    ``bucket_counts`` are per-bucket (not cumulative) with the overflow
    bucket last, as stored in histogram series state -- which means this
    works on serialised snapshots too (:mod:`repro.obs.aggregate` merges
    series by summing these lists).  The estimate assumes observations
    are uniform within their bucket: the target rank is located in its
    bucket and linearly interpolated between the bucket's bounds (lower
    bound 0 for the first bucket).  Ranks landing in the unbounded
    overflow bucket return ``maximum`` (or the last finite bound).  The
    result is clamped to the observed ``[minimum, maximum]`` when known,
    so tiny samples don't report impossible values.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    total = sum(bucket_counts)
    if total == 0:
        return 0.0
    rank = q / 100.0 * total
    cumulative = 0
    estimate: float | None = None
    for index, bound in enumerate(buckets):
        in_bucket = bucket_counts[index]
        if cumulative + in_bucket >= rank and in_bucket > 0:
            lower = buckets[index - 1] if index else 0.0
            fraction = (rank - cumulative) / in_bucket
            estimate = lower + (bound - lower) * fraction
            break
        cumulative += in_bucket
    if estimate is None:
        # Rank lands in the overflow bucket: no finite upper bound.
        estimate = maximum if maximum is not None else float(buckets[-1])
    if minimum is not None and estimate < minimum:
        estimate = minimum
    if maximum is not None and estimate > maximum:
        estimate = maximum
    return estimate


def _series_key(labels: dict) -> tuple:
    """Canonical hashable key for a label set."""
    if not labels:
        return ()
    return tuple(sorted(labels.items()))


class _Instrument:
    """Shared bookkeeping for every instrument kind."""

    kind = "instrument"
    __slots__ = ("name", "help", "_series")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._series: dict[tuple, object] = {}

    def labelsets(self) -> list[dict]:
        return [dict(key) for key in self._series]

    def _series_dicts(self) -> list[dict]:
        raise NotImplementedError

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "help": self.help,
            "series": self._series_dicts(),
        }


class Counter(_Instrument):
    """Monotonically increasing count, optionally labelled."""

    kind = "counter"
    __slots__ = ()

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        key = _series_key(labels)
        self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels) -> float:
        return self._series.get(_series_key(labels), 0)

    def total(self) -> float:
        """Sum across every label combination."""
        return sum(self._series.values())

    def _series_dicts(self) -> list[dict]:
        return [
            {"labels": dict(key), "value": value}
            for key, value in sorted(self._series.items())
        ]


class Gauge(_Instrument):
    """Point-in-time value (occupancy, ratio, configuration size)."""

    kind = "gauge"
    __slots__ = ()

    def set(self, value: float, **labels) -> None:
        self._series[_series_key(labels)] = value

    def add(self, amount: float, **labels) -> None:
        key = _series_key(labels)
        self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels) -> float:
        return self._series.get(_series_key(labels), 0)

    def _series_dicts(self) -> list[dict]:
        return [
            {"labels": dict(key), "value": value}
            for key, value in sorted(self._series.items())
        ]


class Histogram(_Instrument):
    """Bucketed distribution with count/sum/min/max per label set."""

    kind = "histogram"
    __slots__ = ("buckets",)

    def __init__(self, name: str, help: str = "", buckets=None) -> None:
        super().__init__(name, help)
        self.buckets = tuple(sorted(buckets or DEFAULT_BUCKETS))

    def observe(self, value: float, **labels) -> None:
        key = _series_key(labels)
        state = self._series.get(key)
        if state is None:
            state = {
                "count": 0,
                "sum": 0.0,
                "min": value,
                "max": value,
                "bucket_counts": [0] * (len(self.buckets) + 1),
            }
            self._series[key] = state
        state["count"] += 1
        state["sum"] += value
        if value < state["min"]:
            state["min"] = value
        if value > state["max"]:
            state["max"] = value
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                state["bucket_counts"][index] += 1
                return
        state["bucket_counts"][-1] += 1  # overflow bucket

    def count(self, **labels) -> int:
        state = self._series.get(_series_key(labels))
        return 0 if state is None else state["count"]

    def sum(self, **labels) -> float:
        state = self._series.get(_series_key(labels))
        return 0.0 if state is None else state["sum"]

    def mean(self, **labels) -> float:
        state = self._series.get(_series_key(labels))
        if not state or not state["count"]:
            return 0.0
        return state["sum"] / state["count"]

    def percentile(self, q: float, **labels) -> float:
        """Bucket-interpolated percentile estimate for one label set.

        With no labels given and several series recorded, the series'
        bucket counts are merged first, so ``percentile(99)`` on a
        labelled histogram is the cross-series p99.
        """
        state = self._series.get(_series_key(labels))
        if state is None:
            if labels or not self._series:
                return 0.0
            state = self._merged_state()
        return percentile_from_buckets(
            self.buckets, state["bucket_counts"], q,
            minimum=state["min"], maximum=state["max"],
        )

    def percentiles(
        self, qs: tuple[float, ...] = DEFAULT_PERCENTILES, **labels
    ) -> dict[str, float]:
        """``{"p50": ..., "p95": ..., "p99": ...}`` for one label set."""
        return {f"p{q:g}": self.percentile(q, **labels) for q in qs}

    def _merged_state(self) -> dict:
        """All series folded into one (bucket-count sum, min/max hull)."""
        states = list(self._series.values())
        merged = {
            "count": sum(s["count"] for s in states),
            "sum": sum(s["sum"] for s in states),
            "min": min(s["min"] for s in states),
            "max": max(s["max"] for s in states),
            "bucket_counts": [
                sum(counts) for counts in zip(*(s["bucket_counts"] for s in states))
            ],
        }
        return merged

    def _series_dicts(self) -> list[dict]:
        out = []
        for key, state in sorted(self._series.items()):
            entry = {"labels": dict(key)}
            entry.update(state)
            entry.update(
                {
                    f"p{q:g}": percentile_from_buckets(
                        self.buckets, state["bucket_counts"], q,
                        minimum=state["min"], maximum=state["max"],
                    )
                    for q in DEFAULT_PERCENTILES
                }
            )
            out.append(entry)
        return out

    def to_dict(self) -> dict:
        data = super().to_dict()
        data["buckets"] = list(self.buckets)
        return data


def _prom_number(value) -> str:
    """Prometheus sample-value formatting: integral floats as ints."""
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def _prom_escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _prom_escape_label(text: str) -> str:
    return (
        str(text).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _prom_labels(labels: dict) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{key}="{_prom_escape_label(value)}"' for key, value in sorted(labels.items())
    )
    return "{" + body + "}"


class MetricsRegistry:
    """Recording registry: name -> instrument, get-or-create semantics."""

    enabled = True

    def __init__(self) -> None:
        self._instruments: dict[str, _Instrument] = {}

    def _get(self, name: str, factory, help: str):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = factory()
            self._instruments[name] = instrument
        elif type(instrument) is not factory.cls:
            raise ValueError(
                f"metric {name!r} already registered as {instrument.kind}"
            )
        if help and not instrument.help:
            instrument.help = help
        return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        factory = lambda: Counter(name, help)  # noqa: E731 - attr-carrying closure; def adds noise
        factory.cls = Counter
        return self._get(name, factory, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        factory = lambda: Gauge(name, help)  # noqa: E731 - attr-carrying closure; def adds noise
        factory.cls = Gauge
        return self._get(name, factory, help)

    def histogram(self, name: str, help: str = "", buckets=None) -> Histogram:
        factory = lambda: Histogram(name, help, buckets)  # noqa: E731 - attr-carrying closure; def adds noise
        factory.cls = Histogram
        instrument = self._get(name, factory, help)
        if buckets is not None:
            requested = tuple(sorted(buckets))
            if requested != instrument.buckets:
                # Re-bucketing is only safe before any observation: the
                # per-bucket counts can't be redistributed after the fact.
                if instrument._series:
                    raise ValueError(
                        f"histogram {name!r} already has observations under "
                        f"buckets {instrument.buckets}; cannot re-bucket to "
                        f"{requested}"
                    )
                instrument.buckets = requested
        return instrument

    # -- bulk publishing ----------------------------------------------------

    def publish(self, values: dict[str, float], **labels) -> None:
        """Publish a flat ``name -> number`` dict (structure snapshots).

        Names ending in ``_total`` become counter increments; everything
        else becomes a gauge set.  This is how ``metrics()``/``snapshot()``
        dicts from the simulated structures land in the registry.
        """
        for name, value in values.items():
            if name.endswith("_total"):
                self.counter(name).inc(value, **labels)
            else:
                self.gauge(name).set(value, **labels)

    # -- introspection / serialisation --------------------------------------

    def names(self) -> list[str]:
        return sorted(self._instruments)

    def get(self, name: str) -> _Instrument | None:
        return self._instruments.get(name)

    def to_dict(self) -> dict:
        return {
            name: instrument.to_dict()
            for name, instrument in sorted(self._instruments.items())
        }

    def to_json(self, indent: int | None = 2) -> str:
        """The full snapshot as a JSON string (the service's ``/metrics``
        endpoint serves this directly)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def to_prometheus_text(self) -> str:
        """The snapshot in Prometheus text exposition format (v0.0.4).

        Served by ``/metrics`` when the client asks for ``text/plain``;
        counters/gauges map directly, histograms expand to cumulative
        ``_bucket{le=...}`` series plus ``_sum`` and ``_count``.
        """
        lines: list[str] = []
        for name, instrument in sorted(self._instruments.items()):
            if instrument.help:
                lines.append(f"# HELP {name} {_prom_escape_help(instrument.help)}")
            lines.append(f"# TYPE {name} {instrument.kind}")
            if isinstance(instrument, Histogram):
                for key, state in sorted(instrument._series.items()):
                    labels = dict(key)
                    cumulative = 0
                    for index, bound in enumerate(instrument.buckets):
                        cumulative += state["bucket_counts"][index]
                        bucket_labels = dict(labels, le=_prom_number(bound))
                        lines.append(
                            f"{name}_bucket{_prom_labels(bucket_labels)} {cumulative}"
                        )
                    cumulative += state["bucket_counts"][-1]
                    lines.append(
                        f"{name}_bucket{_prom_labels(dict(labels, le='+Inf'))} "
                        f"{cumulative}"
                    )
                    lines.append(
                        f"{name}_sum{_prom_labels(labels)} {_prom_number(state['sum'])}"
                    )
                    lines.append(
                        f"{name}_count{_prom_labels(labels)} {state['count']}"
                    )
            else:
                for key, value in sorted(instrument._series.items()):
                    lines.append(
                        f"{name}{_prom_labels(dict(key))} {_prom_number(value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    def dump(self, path: str) -> None:
        """Write the full snapshot as pretty-printed JSON."""
        with open(path, "w") as handle:
            handle.write(self.to_json())
            handle.write("\n")


class _NullInstrument:
    """Accepts every instrument call and records nothing."""

    __slots__ = ()
    kind = "null"
    name = ""
    help = ""

    def inc(self, amount: float = 1.0, **labels) -> None:
        pass

    def set(self, value: float, **labels) -> None:
        pass

    def add(self, amount: float, **labels) -> None:
        pass

    def observe(self, value: float, **labels) -> None:
        pass

    def value(self, **labels) -> float:
        return 0

    def total(self) -> float:
        return 0

    def count(self, **labels) -> int:
        return 0

    def sum(self, **labels) -> float:
        return 0.0

    def mean(self, **labels) -> float:
        return 0.0

    def percentile(self, q: float, **labels) -> float:
        return 0.0

    def percentiles(self, qs=DEFAULT_PERCENTILES, **labels) -> dict:
        return {}

    def labelsets(self) -> list:
        return []

    def to_dict(self) -> dict:
        return {}


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """Disabled-mode registry: every instrument is the shared no-op."""

    enabled = False

    def counter(self, name: str, help: str = "") -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, help: str = "") -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, help: str = "", buckets=None) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def publish(self, values: dict, **labels) -> None:
        pass

    def names(self) -> list[str]:
        return []

    def get(self, name: str) -> None:
        return None

    def to_dict(self) -> dict:
        return {}

    def to_json(self, indent: int | None = 2) -> str:
        return "{}"

    def to_prometheus_text(self) -> str:
        return ""

    def dump(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write("{}\n")


_NULL_REGISTRY = NullRegistry()
_active: MetricsRegistry | NullRegistry = _NULL_REGISTRY


def get_registry() -> MetricsRegistry | NullRegistry:
    """The active registry (the shared null object when disabled)."""
    return _active


def metrics_enabled() -> bool:
    return _active.enabled


def enable_metrics(registry: MetricsRegistry | None = None) -> MetricsRegistry:
    """Install (and return) a recording registry as the active one."""
    global _active
    _active = registry or MetricsRegistry()
    return _active


def disable_metrics() -> None:
    """Restore the no-op null registry."""
    global _active
    _active = _NULL_REGISTRY


@contextmanager
def use_registry(registry: MetricsRegistry | NullRegistry):
    """Temporarily install ``registry`` (tests and scoped CLI runs)."""
    global _active
    previous = _active
    _active = registry
    try:
        yield registry
    finally:
        _active = previous
