"""Metrics registry: counters, gauges, and histograms with labels.

The observability substrate every structure in the stack publishes into
(BTB occupancy, delta-vs-pointer hit split, resteer causes, harness
cache hits, fork-pool worker seconds, ...).  Design constraints:

* **dependency-free** -- plain dicts, JSON-serialisable snapshots;
* **near-zero overhead when disabled** -- the module-level default
  registry is a shared null object whose instruments ignore every call,
  so publishers never branch on an "is observability on?" flag, and the
  simulator hot loop is never instrumented per event (structures
  publish aggregate counters once per run);
* **get-or-create instruments** -- ``registry.counter(name)`` is
  idempotent, so publishers fetch instruments at publish time and no
  construction-order coupling exists between the registry and the
  simulated structures.

Naming scheme (documented in README "Observability"): snake_case with a
subsystem prefix (``frontend_``, ``btb_``, ``pdede_``, ``icache_``,
``ras_``, ``harness_``, ``scheduler_`` for the shard scheduler's
retry/timeout/steal counters and shard-latency histogram);
monotonically increasing counts end in ``_total``; point-in-time values
(occupancies, ratios) are gauges.  Series are distinguished by labels
(``app=``, ``design=``, ``kind=``, ``outcome=``).
"""

from __future__ import annotations

import json
from contextlib import contextmanager

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "get_registry",
    "enable_metrics",
    "disable_metrics",
    "metrics_enabled",
    "use_registry",
]

#: Default histogram buckets -- tuned for wall-clock seconds, the layer's
#: dominant histogram use (per-run and per-worker timings).
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0, 300.0
)


def _series_key(labels: dict) -> tuple:
    """Canonical hashable key for a label set."""
    if not labels:
        return ()
    return tuple(sorted(labels.items()))


class _Instrument:
    """Shared bookkeeping for every instrument kind."""

    kind = "instrument"
    __slots__ = ("name", "help", "_series")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._series: dict[tuple, object] = {}

    def labelsets(self) -> list[dict]:
        return [dict(key) for key in self._series]

    def _series_dicts(self) -> list[dict]:
        raise NotImplementedError

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "help": self.help,
            "series": self._series_dicts(),
        }


class Counter(_Instrument):
    """Monotonically increasing count, optionally labelled."""

    kind = "counter"
    __slots__ = ()

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        key = _series_key(labels)
        self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels) -> float:
        return self._series.get(_series_key(labels), 0)

    def total(self) -> float:
        """Sum across every label combination."""
        return sum(self._series.values())

    def _series_dicts(self) -> list[dict]:
        return [
            {"labels": dict(key), "value": value}
            for key, value in sorted(self._series.items())
        ]


class Gauge(_Instrument):
    """Point-in-time value (occupancy, ratio, configuration size)."""

    kind = "gauge"
    __slots__ = ()

    def set(self, value: float, **labels) -> None:
        self._series[_series_key(labels)] = value

    def add(self, amount: float, **labels) -> None:
        key = _series_key(labels)
        self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels) -> float:
        return self._series.get(_series_key(labels), 0)

    def _series_dicts(self) -> list[dict]:
        return [
            {"labels": dict(key), "value": value}
            for key, value in sorted(self._series.items())
        ]


class Histogram(_Instrument):
    """Bucketed distribution with count/sum/min/max per label set."""

    kind = "histogram"
    __slots__ = ("buckets",)

    def __init__(self, name: str, help: str = "", buckets=None) -> None:
        super().__init__(name, help)
        self.buckets = tuple(sorted(buckets or DEFAULT_BUCKETS))

    def observe(self, value: float, **labels) -> None:
        key = _series_key(labels)
        state = self._series.get(key)
        if state is None:
            state = {
                "count": 0,
                "sum": 0.0,
                "min": value,
                "max": value,
                "bucket_counts": [0] * (len(self.buckets) + 1),
            }
            self._series[key] = state
        state["count"] += 1
        state["sum"] += value
        if value < state["min"]:
            state["min"] = value
        if value > state["max"]:
            state["max"] = value
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                state["bucket_counts"][index] += 1
                return
        state["bucket_counts"][-1] += 1  # overflow bucket

    def count(self, **labels) -> int:
        state = self._series.get(_series_key(labels))
        return 0 if state is None else state["count"]

    def sum(self, **labels) -> float:
        state = self._series.get(_series_key(labels))
        return 0.0 if state is None else state["sum"]

    def mean(self, **labels) -> float:
        state = self._series.get(_series_key(labels))
        if not state or not state["count"]:
            return 0.0
        return state["sum"] / state["count"]

    def _series_dicts(self) -> list[dict]:
        out = []
        for key, state in sorted(self._series.items()):
            entry = {"labels": dict(key)}
            entry.update(state)
            out.append(entry)
        return out

    def to_dict(self) -> dict:
        data = super().to_dict()
        data["buckets"] = list(self.buckets)
        return data


class MetricsRegistry:
    """Recording registry: name -> instrument, get-or-create semantics."""

    enabled = True

    def __init__(self) -> None:
        self._instruments: dict[str, _Instrument] = {}

    def _get(self, name: str, factory, help: str):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = factory()
            self._instruments[name] = instrument
        elif type(instrument) is not factory.cls:
            raise ValueError(
                f"metric {name!r} already registered as {instrument.kind}"
            )
        if help and not instrument.help:
            instrument.help = help
        return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        factory = lambda: Counter(name, help)  # noqa: E731
        factory.cls = Counter
        return self._get(name, factory, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        factory = lambda: Gauge(name, help)  # noqa: E731
        factory.cls = Gauge
        return self._get(name, factory, help)

    def histogram(self, name: str, help: str = "", buckets=None) -> Histogram:
        factory = lambda: Histogram(name, help, buckets)  # noqa: E731
        factory.cls = Histogram
        return self._get(name, factory, help)

    # -- bulk publishing ----------------------------------------------------

    def publish(self, values: dict[str, float], **labels) -> None:
        """Publish a flat ``name -> number`` dict (structure snapshots).

        Names ending in ``_total`` become counter increments; everything
        else becomes a gauge set.  This is how ``metrics()``/``snapshot()``
        dicts from the simulated structures land in the registry.
        """
        for name, value in values.items():
            if name.endswith("_total"):
                self.counter(name).inc(value, **labels)
            else:
                self.gauge(name).set(value, **labels)

    # -- introspection / serialisation --------------------------------------

    def names(self) -> list[str]:
        return sorted(self._instruments)

    def get(self, name: str) -> _Instrument | None:
        return self._instruments.get(name)

    def to_dict(self) -> dict:
        return {
            name: instrument.to_dict()
            for name, instrument in sorted(self._instruments.items())
        }

    def to_json(self, indent: int | None = 2) -> str:
        """The full snapshot as a JSON string (the service's ``/metrics``
        endpoint serves this directly)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def dump(self, path: str) -> None:
        """Write the full snapshot as pretty-printed JSON."""
        with open(path, "w") as handle:
            handle.write(self.to_json())
            handle.write("\n")


class _NullInstrument:
    """Accepts every instrument call and records nothing."""

    __slots__ = ()
    kind = "null"
    name = ""
    help = ""

    def inc(self, amount: float = 1.0, **labels) -> None:
        pass

    def set(self, value: float, **labels) -> None:
        pass

    def add(self, amount: float, **labels) -> None:
        pass

    def observe(self, value: float, **labels) -> None:
        pass

    def value(self, **labels) -> float:
        return 0

    def total(self) -> float:
        return 0

    def count(self, **labels) -> int:
        return 0

    def sum(self, **labels) -> float:
        return 0.0

    def mean(self, **labels) -> float:
        return 0.0

    def labelsets(self) -> list:
        return []

    def to_dict(self) -> dict:
        return {}


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """Disabled-mode registry: every instrument is the shared no-op."""

    enabled = False

    def counter(self, name: str, help: str = "") -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, help: str = "") -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, help: str = "", buckets=None) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def publish(self, values: dict, **labels) -> None:
        pass

    def names(self) -> list[str]:
        return []

    def get(self, name: str) -> None:
        return None

    def to_dict(self) -> dict:
        return {}

    def to_json(self, indent: int | None = 2) -> str:
        return "{}"

    def dump(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write("{}\n")


_NULL_REGISTRY = NullRegistry()
_active: MetricsRegistry | NullRegistry = _NULL_REGISTRY


def get_registry() -> MetricsRegistry | NullRegistry:
    """The active registry (the shared null object when disabled)."""
    return _active


def metrics_enabled() -> bool:
    return _active.enabled


def enable_metrics(registry: MetricsRegistry | None = None) -> MetricsRegistry:
    """Install (and return) a recording registry as the active one."""
    global _active
    _active = registry or MetricsRegistry()
    return _active


def disable_metrics() -> None:
    """Restore the no-op null registry."""
    global _active
    _active = _NULL_REGISTRY


@contextmanager
def use_registry(registry: MetricsRegistry | NullRegistry):
    """Temporarily install ``registry`` (tests and scoped CLI runs)."""
    global _active
    previous = _active
    _active = registry
    try:
        yield registry
    finally:
        _active = previous
