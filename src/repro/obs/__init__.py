"""Observability layer: metrics registry + structured event tracing.

A dependency-free instrumentation substrate for the simulator stack:

* :mod:`repro.obs.metrics` -- counters / gauges / histograms with
  labels, published by the frontend simulator, the BTB designs, the
  ICache, the RAS, and the experiment harness;
* :mod:`repro.obs.tracing` -- nested wall-clock spans (optionally with
  ``tracemalloc`` peaks) around trace generation, simulation, and the
  report sections, with a JSONL sink and a human tree renderer.

Both default to shared null objects, so instrumented code pays ~nothing
until ``python -m repro ... --metrics-out/--trace-out/--progress`` (or a
test) enables them.  See README "Observability" for the metric naming
scheme and example output.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    disable_metrics,
    enable_metrics,
    get_registry,
    metrics_enabled,
    use_registry,
)
from repro.obs.tracing import (
    NullTracer,
    Span,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    read_jsonl,
    tracing_enabled,
    use_tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "disable_metrics",
    "enable_metrics",
    "get_registry",
    "metrics_enabled",
    "use_registry",
    "NullTracer",
    "Span",
    "Tracer",
    "disable_tracing",
    "enable_tracing",
    "get_tracer",
    "read_jsonl",
    "tracing_enabled",
    "use_tracer",
]
