"""Observability layer: metrics, span tracing, and request events.

A dependency-free instrumentation substrate for the simulator stack:

* :mod:`repro.obs.metrics` -- counters / gauges / histograms with
  labels (and bucket-interpolated percentiles), published by the
  frontend simulator, the BTB designs, the ICache, the RAS, and the
  experiment harness;
* :mod:`repro.obs.tracing` -- nested wall-clock spans (optionally with
  ``tracemalloc`` peaks) around trace generation, simulation, and the
  report sections, with a JSONL sink and a human tree renderer;
* :mod:`repro.obs.events` -- flat per-request event log (bounded ring
  + JSONL sink) keyed by correlation id, driving `/debug/trace` and
  the serve telemetry report (:mod:`repro.obs.aggregate`).

All three default to shared null objects, so instrumented code pays
~nothing until ``python -m repro ... --metrics-out/--trace-out/
--progress`` / ``repro serve`` (or a test) enables them.  See README
"Observability" for the metric naming scheme and example output.
"""

from repro.obs.events import (
    EventLog,
    NullEventLog,
    bind_rids,
    current_rids,
    disable_events,
    enable_events,
    events_enabled,
    get_event_log,
    new_request_id,
    use_event_log,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    disable_metrics,
    enable_metrics,
    get_registry,
    metrics_enabled,
    use_registry,
)
from repro.obs.tracing import (
    NullTracer,
    Span,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    read_jsonl,
    tracing_enabled,
    use_tracer,
)

__all__ = [
    "EventLog",
    "NullEventLog",
    "bind_rids",
    "current_rids",
    "disable_events",
    "enable_events",
    "events_enabled",
    "get_event_log",
    "new_request_id",
    "use_event_log",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "disable_metrics",
    "enable_metrics",
    "get_registry",
    "metrics_enabled",
    "use_registry",
    "NullTracer",
    "Span",
    "Tracer",
    "disable_tracing",
    "enable_tracing",
    "get_tracer",
    "read_jsonl",
    "tracing_enabled",
    "use_tracer",
]
