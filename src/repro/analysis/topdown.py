"""Top-Down stall breakdown (Figure 1).

Figure 1 motivates the paper: across 100+ frontend-bound applications,
BTB-induced resteers are the largest contributor to frontend stalls
(>40% of frontend stall cycles).  Our frontend model already buckets
cycles the Top-Down way (Yasin, ISPASS 2014); this module runs the
baseline configuration over a suite and aggregates the shares.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.btb.baseline import BaselineBTB
from repro.frontend.params import CoreParams, ICELAKE
from repro.frontend.simulator import FrontendSimulator
from repro.frontend.stats import FrontendStats
from repro.workloads.trace import Trace


@dataclass
class TopDownRow:
    """Per-application Top-Down summary."""

    name: str
    category: str
    retiring_fraction: float
    frontend_bound_fraction: float
    bad_speculation_fraction: float
    btb_resteer_share_of_frontend: float


@dataclass
class TopDownReport:
    """Suite-level Figure 1 data."""

    rows: list[TopDownRow] = field(default_factory=list)

    @property
    def mean_frontend_bound(self) -> float:
        if not self.rows:
            return 0.0
        return sum(row.frontend_bound_fraction for row in self.rows) / len(self.rows)

    @property
    def mean_btb_resteer_share(self) -> float:
        if not self.rows:
            return 0.0
        return sum(row.btb_resteer_share_of_frontend for row in self.rows) / len(self.rows)


def topdown_row(trace: Trace, stats: FrontendStats, category: str = "") -> TopDownRow:
    """Convert a finished simulation into a Figure 1 row."""
    total = stats.cycles or 1.0
    return TopDownRow(
        name=trace.name,
        category=category or trace.category,
        retiring_fraction=stats.base_cycles / total,
        frontend_bound_fraction=stats.frontend_bound_fraction,
        bad_speculation_fraction=stats.bad_speculation_fraction,
        btb_resteer_share_of_frontend=stats.btb_resteer_share_of_frontend,
    )


def topdown_report(
    traces: list[Trace],
    params: CoreParams = ICELAKE,
    warmup_fraction: float = 0.25,
) -> TopDownReport:
    """Run the baseline core over ``traces`` and collect Figure 1 data."""
    report = TopDownReport()
    for trace in traces:
        simulator = FrontendSimulator(BaselineBTB(), params=params)
        stats = simulator.run(trace, warmup_fraction=warmup_fraction)
        report.rows.append(topdown_row(trace, stats))
    return report
