"""Section 3 characterisation: the analyses behind Figures 3-8.

Each function consumes one or more traces and returns plain dataclasses
so the experiment runners and tests can assert on them directly.
Returns are excluded from the target-uniqueness analyses: they never
consume BTB entries (Section 2), so including their (per-call-site)
return addresses would distort the dedup statistics the BTB cares about.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.branch.address import (
    page_distance,
    page_number,
    page_offset,
    region_id,
    same_page,
)
from repro.branch.types import BranchKind
from repro.workloads.trace import Trace

_RETURN = int(BranchKind.RETURN)


@dataclass
class TakenStats:
    """Figure 3: taken fractions, static and dynamic."""

    name: str
    static_taken_fraction: float
    dynamic_taken_fraction: float


def taken_stats(trace: Trace) -> TakenStats:
    """Fraction of static branch PCs / dynamic instances that are taken."""
    return TakenStats(
        name=trace.name,
        static_taken_fraction=trace.static_taken_fraction(),
        dynamic_taken_fraction=trace.dynamic_taken_fraction(),
    )


@dataclass
class BranchTypeMix:
    """Figure 4: share of each branch kind among taken branches."""

    name: str
    fractions: dict[str, float] = field(default_factory=dict)


def branch_type_mix(trace: Trace, include_returns: bool = False) -> BranchTypeMix:
    """Taken-branch kind distribution (Figure 4).

    Returns are excluded by default -- they are served by the RAS, and
    Figure 4 classifies the BTB-relevant branch types.
    """
    counts: dict[int, int] = {}
    total = 0
    for pc, kind, taken, target, gap in trace.events():
        if not taken:
            continue
        if kind == _RETURN and not include_returns:
            continue
        counts[kind] = counts.get(kind, 0) + 1
        total += 1
    fractions = {
        BranchKind(kind).name: count / total for kind, count in sorted(counts.items())
    }
    return BranchTypeMix(name=trace.name, fractions=fractions)


@dataclass
class UniquenessStats:
    """Figure 7: unique targets / regions / pages / offsets vs unique PCs."""

    name: str
    unique_pcs: int
    unique_targets: int
    unique_regions: int
    unique_pages: int
    unique_offsets: int

    @property
    def target_fraction(self) -> float:
        return self.unique_targets / self.unique_pcs if self.unique_pcs else 0.0

    @property
    def region_fraction(self) -> float:
        return self.unique_regions / self.unique_pcs if self.unique_pcs else 0.0

    @property
    def page_fraction(self) -> float:
        return self.unique_pages / self.unique_pcs if self.unique_pcs else 0.0

    @property
    def offset_fraction(self) -> float:
        return self.unique_offsets / self.unique_pcs if self.unique_pcs else 0.0


def uniqueness_stats(trace: Trace) -> UniquenessStats:
    """Count unique branch PCs and unique target components (Figure 7)."""
    pcs: set[int] = set()
    targets: set[int] = set()
    for pc, kind, taken, target, gap in trace.events():
        if not taken or kind == _RETURN:
            continue
        pcs.add(pc)
        targets.add(target)
    return UniquenessStats(
        name=trace.name,
        unique_pcs=len(pcs),
        unique_targets=len(targets),
        unique_regions=len({region_id(t) for t in targets}),
        unique_pages=len({page_number(t) for t in targets}),
        unique_offsets=len({page_offset(t) for t in targets}),
    )


@dataclass
class DensityStats:
    """Figure 6: average branch targets per page and per region."""

    name: str
    targets_per_page: float
    targets_per_region: float


def density_stats(trace: Trace) -> DensityStats:
    """Unique targets divided by unique pages / regions (Figure 6)."""
    stats = uniqueness_stats(trace)
    return DensityStats(
        name=trace.name,
        targets_per_page=(
            stats.unique_targets / stats.unique_pages if stats.unique_pages else 0.0
        ),
        targets_per_region=(
            stats.unique_targets / stats.unique_regions if stats.unique_regions else 0.0
        ),
    )


@dataclass
class DistanceStats:
    """Figure 8: distance in pages between branch PC and target."""

    name: str
    same_page_fraction: float
    #: Histogram over |page distance| buckets, as fractions.
    buckets: dict[str, float] = field(default_factory=dict)
    #: Same-page fraction per branch kind name.
    by_kind: dict[str, float] = field(default_factory=dict)

_DISTANCE_BUCKETS = (
    ("same page", 0),
    ("<= 16 pages", 16),
    ("<= 256 pages", 256),
    ("<= 65536 pages", 65536),
    ("> 65536 pages", None),
)


def distance_stats(trace: Trace) -> DistanceStats:
    """Branch-PC-to-target page distance distribution (Figure 8)."""
    counts = {label: 0 for label, _ in _DISTANCE_BUCKETS}
    kind_total: dict[int, int] = {}
    kind_same: dict[int, int] = {}
    total = 0
    for pc, kind, taken, target, gap in trace.events():
        if not taken or kind == _RETURN:
            continue
        total += 1
        distance = abs(page_distance(pc, target))
        for label, bound in _DISTANCE_BUCKETS:
            if bound is None or distance <= bound:
                counts[label] += 1
                break
        kind_total[kind] = kind_total.get(kind, 0) + 1
        if distance == 0:
            kind_same[kind] = kind_same.get(kind, 0) + 1
    if total == 0:
        return DistanceStats(name=trace.name, same_page_fraction=0.0)
    return DistanceStats(
        name=trace.name,
        same_page_fraction=counts["same page"] / total,
        buckets={label: count / total for label, count in counts.items()},
        by_kind={
            BranchKind(kind).name: kind_same.get(kind, 0) / kind_total[kind]
            for kind in sorted(kind_total)
        },
    )


@dataclass
class RuntimeSeries:
    """Figure 5: region / page / offset of each taken target over time."""

    name: str
    sample_indices: list[int]
    regions: list[int]
    pages: list[int]
    offsets: list[int]

    def distinct_regions(self) -> int:
        return len(set(self.regions))

    def distinct_pages(self) -> int:
        return len(set(self.pages))


def runtime_series(trace: Trace, max_samples: int = 4096) -> RuntimeSeries:
    """Sampled time series of target components (Figure 5's three plots)."""
    taken_indices = [
        index
        for index, (pc, kind, taken, target, gap) in enumerate(trace.events())
        if taken and kind != _RETURN
    ]
    stride = max(1, len(taken_indices) // max_samples)
    sample_indices = taken_indices[::stride]
    regions, pages, offsets = [], [], []
    for index in sample_indices:
        target = trace.targets[index]
        regions.append(region_id(target))
        pages.append(page_number(target))
        offsets.append(page_offset(target))
    return RuntimeSeries(
        name=trace.name,
        sample_indices=sample_indices,
        regions=regions,
        pages=pages,
        offsets=offsets,
    )


def aggregate_mean(values: Iterable[float]) -> float:
    """Arithmetic mean helper used by the suite-level summaries."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)
