"""Section 3 characterisation: the analyses behind Figures 3-8.

Each function consumes one or more traces and returns plain dataclasses
so the experiment runners and tests can assert on them directly.
Returns are excluded from the target-uniqueness analyses: they never
consume BTB entries (Section 2), so including their (per-call-site)
return addresses would distort the dedup statistics the BTB cares about.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.branch.address import (
    page_distance,
    page_number,
    page_offset,
    region_id,
    same_page,
)
from repro.branch.types import BranchKind
from repro.workloads.trace import Trace

_RETURN = int(BranchKind.RETURN)


@dataclass
class TakenStats:
    """Figure 3: taken fractions, static and dynamic."""

    name: str
    static_taken_fraction: float
    dynamic_taken_fraction: float


def taken_stats(trace: Trace) -> TakenStats:
    """Fraction of static branch PCs / dynamic instances that are taken."""
    return TakenStats(
        name=trace.name,
        static_taken_fraction=trace.static_taken_fraction(),
        dynamic_taken_fraction=trace.dynamic_taken_fraction(),
    )


@dataclass
class BranchTypeMix:
    """Figure 4: share of each branch kind among taken branches."""

    name: str
    fractions: dict[str, float] = field(default_factory=dict)


def branch_type_mix(trace: Trace, include_returns: bool = False) -> BranchTypeMix:
    """Taken-branch kind distribution (Figure 4).

    Returns are excluded by default -- they are served by the RAS, and
    Figure 4 classifies the BTB-relevant branch types.
    """
    counts: dict[int, int] = {}
    total = 0
    for pc, kind, taken, target, gap in trace.events():
        if not taken:
            continue
        if kind == _RETURN and not include_returns:
            continue
        counts[kind] = counts.get(kind, 0) + 1
        total += 1
    fractions = {
        BranchKind(kind).name: count / total for kind, count in sorted(counts.items())
    }
    return BranchTypeMix(name=trace.name, fractions=fractions)


@dataclass
class UniquenessStats:
    """Figure 7: unique targets / regions / pages / offsets vs unique PCs."""

    name: str
    unique_pcs: int
    unique_targets: int
    unique_regions: int
    unique_pages: int
    unique_offsets: int

    @property
    def target_fraction(self) -> float:
        return self.unique_targets / self.unique_pcs if self.unique_pcs else 0.0

    @property
    def region_fraction(self) -> float:
        return self.unique_regions / self.unique_pcs if self.unique_pcs else 0.0

    @property
    def page_fraction(self) -> float:
        return self.unique_pages / self.unique_pcs if self.unique_pcs else 0.0

    @property
    def offset_fraction(self) -> float:
        return self.unique_offsets / self.unique_pcs if self.unique_pcs else 0.0


def uniqueness_stats(trace: Trace) -> UniquenessStats:
    """Count unique branch PCs and unique target components (Figure 7)."""
    pcs: set[int] = set()
    targets: set[int] = set()
    for pc, kind, taken, target, gap in trace.events():
        if not taken or kind == _RETURN:
            continue
        pcs.add(pc)
        targets.add(target)
    return UniquenessStats(
        name=trace.name,
        unique_pcs=len(pcs),
        unique_targets=len(targets),
        unique_regions=len({region_id(t) for t in targets}),
        unique_pages=len({page_number(t) for t in targets}),
        unique_offsets=len({page_offset(t) for t in targets}),
    )


@dataclass
class DensityStats:
    """Figure 6: average branch targets per page and per region."""

    name: str
    targets_per_page: float
    targets_per_region: float


def density_stats(trace: Trace) -> DensityStats:
    """Unique targets divided by unique pages / regions (Figure 6)."""
    stats = uniqueness_stats(trace)
    return DensityStats(
        name=trace.name,
        targets_per_page=(
            stats.unique_targets / stats.unique_pages if stats.unique_pages else 0.0
        ),
        targets_per_region=(
            stats.unique_targets / stats.unique_regions if stats.unique_regions else 0.0
        ),
    )


@dataclass
class DistanceStats:
    """Figure 8: distance in pages between branch PC and target."""

    name: str
    same_page_fraction: float
    #: Histogram over |page distance| buckets, as fractions.
    buckets: dict[str, float] = field(default_factory=dict)
    #: Same-page fraction per branch kind name.
    by_kind: dict[str, float] = field(default_factory=dict)

_DISTANCE_BUCKETS = (
    ("same page", 0),
    ("<= 16 pages", 16),
    ("<= 256 pages", 256),
    ("<= 65536 pages", 65536),
    ("> 65536 pages", None),
)


def distance_stats(trace: Trace) -> DistanceStats:
    """Branch-PC-to-target page distance distribution (Figure 8)."""
    counts = {label: 0 for label, _ in _DISTANCE_BUCKETS}
    kind_total: dict[int, int] = {}
    kind_same: dict[int, int] = {}
    total = 0
    for pc, kind, taken, target, gap in trace.events():
        if not taken or kind == _RETURN:
            continue
        total += 1
        distance = abs(page_distance(pc, target))
        for label, bound in _DISTANCE_BUCKETS:
            if bound is None or distance <= bound:
                counts[label] += 1
                break
        kind_total[kind] = kind_total.get(kind, 0) + 1
        if distance == 0:
            kind_same[kind] = kind_same.get(kind, 0) + 1
    if total == 0:
        return DistanceStats(name=trace.name, same_page_fraction=0.0)
    return DistanceStats(
        name=trace.name,
        same_page_fraction=counts["same page"] / total,
        buckets={label: count / total for label, count in counts.items()},
        by_kind={
            BranchKind(kind).name: kind_same.get(kind, 0) / kind_total[kind]
            for kind in sorted(kind_total)
        },
    )


@dataclass
class RuntimeSeries:
    """Figure 5: region / page / offset of each taken target over time."""

    name: str
    sample_indices: list[int]
    regions: list[int]
    pages: list[int]
    offsets: list[int]

    def distinct_regions(self) -> int:
        return len(set(self.regions))

    def distinct_pages(self) -> int:
        return len(set(self.pages))


def runtime_series(trace: Trace, max_samples: int = 4096) -> RuntimeSeries:
    """Sampled time series of target components (Figure 5's three plots)."""
    taken_indices = [
        index
        for index, (pc, kind, taken, target, gap) in enumerate(trace.events())
        if taken and kind != _RETURN
    ]
    stride = max(1, len(taken_indices) // max_samples)
    sample_indices = taken_indices[::stride]
    regions, pages, offsets = [], [], []
    for index in sample_indices:
        target = trace.targets[index]
        regions.append(region_id(target))
        pages.append(page_number(target))
        offsets.append(page_offset(target))
    return RuntimeSeries(
        name=trace.name,
        sample_indices=sample_indices,
        regions=regions,
        pages=pages,
        offsets=offsets,
    )


def aggregate_mean(values: Iterable[float]) -> float:
    """Arithmetic mean helper used by the suite-level summaries."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


# -- the characterization profile and import gate ----------------------------
#
# Real traces enter through repro.workloads.ingest; before one is allowed
# to drive experiments it is condensed into a CharacterizationProfile
# (one flat record combining the Figs 3-8 analyses above) and checked
# against a CharacterizationEnvelope.  The envelope encodes what the
# paper's characterization -- and this repo's own synthetic suite --
# establish as plausible branch behaviour; a capture that falls outside
# it is far more often a broken converter (byte-swapped addresses, gap
# column dropped, returns mislabelled) than a genuinely novel workload,
# so the gate rejects it with diagnostics naming each violated bound.


@dataclass
class CharacterizationProfile:
    """One flat record of the Figs 3-8 analyses for a single trace."""

    name: str
    category: str
    n_events: int
    instruction_count: int
    static_branches: int
    #: Figure 3.
    static_taken_fraction: float
    dynamic_taken_fraction: float
    #: Figure 4: taken, BTB-relevant (returns excluded) kind mix.
    kind_mix: dict[str, float] = field(default_factory=dict)
    #: Figure 7 (fractions of unique taken-branch PCs).
    unique_pcs: int = 0
    unique_targets: int = 0
    unique_regions: int = 0
    unique_pages: int = 0
    target_fraction: float = 0.0
    region_fraction: float = 0.0
    page_fraction: float = 0.0
    #: Figure 6.
    targets_per_page: float = 0.0
    targets_per_region: float = 0.0
    #: Figure 8.
    same_page_fraction: float = 0.0
    distance_buckets: dict[str, float] = field(default_factory=dict)
    #: Mean non-branch instructions between branch events.
    mean_gap: float = 0.0

    def to_dict(self) -> dict:
        """JSON-serialisable snapshot (the ``repro convert`` report)."""
        return {
            "name": self.name,
            "category": self.category,
            "n_events": self.n_events,
            "instruction_count": self.instruction_count,
            "static_branches": self.static_branches,
            "static_taken_fraction": self.static_taken_fraction,
            "dynamic_taken_fraction": self.dynamic_taken_fraction,
            "kind_mix": dict(self.kind_mix),
            "unique_pcs": self.unique_pcs,
            "unique_targets": self.unique_targets,
            "unique_regions": self.unique_regions,
            "unique_pages": self.unique_pages,
            "target_fraction": self.target_fraction,
            "region_fraction": self.region_fraction,
            "page_fraction": self.page_fraction,
            "targets_per_page": self.targets_per_page,
            "targets_per_region": self.targets_per_region,
            "same_page_fraction": self.same_page_fraction,
            "distance_buckets": dict(self.distance_buckets),
            "mean_gap": self.mean_gap,
        }


def characterize(trace: Trace) -> CharacterizationProfile:
    """Condense the Figs 3-8 analyses into one profile record."""
    taken = taken_stats(trace)
    mix = branch_type_mix(trace)
    unique = uniqueness_stats(trace)
    density = density_stats(trace)
    distance = distance_stats(trace)
    n_events = len(trace)
    mean_gap = (sum(trace.gaps) / n_events) if n_events else 0.0
    return CharacterizationProfile(
        name=trace.name,
        category=trace.category,
        n_events=n_events,
        instruction_count=trace.instruction_count,
        static_branches=trace.static_branch_count(),
        static_taken_fraction=taken.static_taken_fraction,
        dynamic_taken_fraction=taken.dynamic_taken_fraction,
        kind_mix=dict(mix.fractions),
        unique_pcs=unique.unique_pcs,
        unique_targets=unique.unique_targets,
        unique_regions=unique.unique_regions,
        unique_pages=unique.unique_pages,
        target_fraction=unique.target_fraction,
        region_fraction=unique.region_fraction,
        page_fraction=unique.page_fraction,
        targets_per_page=density.targets_per_page,
        targets_per_region=density.targets_per_region,
        same_page_fraction=distance.same_page_fraction,
        distance_buckets=dict(distance.buckets),
        mean_gap=mean_gap,
    )


@dataclass(frozen=True)
class EnvelopeBound:
    """One closed interval on a profile metric, with a diagnosis hint."""

    metric: str
    low: float | None
    high: float | None
    hint: str

    def violation(self, value: float) -> "EnvelopeViolation | None":
        if self.low is not None and value < self.low:
            return EnvelopeViolation(self.metric, value, self.low, self.high, self.hint)
        if self.high is not None and value > self.high:
            return EnvelopeViolation(self.metric, value, self.low, self.high, self.hint)
        return None


@dataclass(frozen=True)
class EnvelopeViolation:
    """One metric outside its envelope bound, rendered with its hint."""

    metric: str
    value: float
    low: float | None
    high: float | None
    hint: str

    def message(self) -> str:
        low = "-inf" if self.low is None else f"{self.low:g}"
        high = "+inf" if self.high is None else f"{self.high:g}"
        return (
            f"{self.metric} = {self.value:g} outside [{low}, {high}]: {self.hint}"
        )


class EnvelopeError(ValueError):
    """A trace the characterization gate refuses, with all diagnostics."""

    def __init__(self, name: str, violations: list[EnvelopeViolation]) -> None:
        lines = "\n".join(f"  - {violation.message()}" for violation in violations)
        super().__init__(
            f"trace {name!r} fails the characterization envelope "
            f"({len(violations)} violation(s)):\n{lines}\n"
            "Pass gate=False / --no-gate to import anyway."
        )
        self.name = name
        self.violations = violations


@dataclass(frozen=True)
class CharacterizationEnvelope:
    """A set of bounds a profile must satisfy to pass the import gate."""

    bounds: tuple[EnvelopeBound, ...]

    def validate(self, profile: CharacterizationProfile) -> list[EnvelopeViolation]:
        """Every violated bound, in declaration order (empty: in envelope)."""
        conditional = profile.kind_mix.get(BranchKind.COND_DIRECT.name, 0.0)
        indirect = profile.kind_mix.get(
            BranchKind.UNCOND_INDIRECT.name, 0.0
        ) + profile.kind_mix.get(BranchKind.CALL_INDIRECT.name, 0.0)
        values = {
            "n_events": float(profile.n_events),
            "unique_pcs": float(profile.unique_pcs),
            "dynamic_taken_fraction": profile.dynamic_taken_fraction,
            "static_taken_fraction": profile.static_taken_fraction,
            "conditional_fraction": conditional,
            "indirect_fraction": indirect,
            "target_fraction": profile.target_fraction,
            "region_fraction": profile.region_fraction,
            "page_fraction": profile.page_fraction,
            "targets_per_page": profile.targets_per_page,
            "same_page_fraction": profile.same_page_fraction,
            "mean_gap": profile.mean_gap,
        }
        violations = []
        for bound in self.bounds:
            value = values.get(bound.metric)
            if value is None:
                continue
            violation = bound.violation(value)
            if violation is not None:
                violations.append(violation)
        return violations

    def check(self, profile: CharacterizationProfile) -> None:
        """Raise :class:`EnvelopeError` when the profile is out of envelope."""
        violations = self.validate(profile)
        if violations:
            raise EnvelopeError(profile.name, violations)


def paper_envelope() -> CharacterizationEnvelope:
    """The default import gate, calibrated to the paper's Figs 3-8.

    Bounds are deliberately generous -- real server/browser/personal
    workloads all sit comfortably inside them (as does every synthetic
    suite member at every scale) -- so a violation almost always means
    the *converter* is broken, which is what each hint says.
    """
    return CharacterizationEnvelope(
        bounds=(
            EnvelopeBound(
                "n_events", 64, None,
                "too few branch events to characterize; capture a longer window",
            ),
            EnvelopeBound(
                "unique_pcs", 16, None,
                "almost no static branches: is the capture stuck in one loop, "
                "or the PC column constant?",
            ),
            EnvelopeBound(
                "dynamic_taken_fraction", 0.2, 1.0,
                "Fig 3 puts dynamic taken fractions near 60-75%; a very low "
                "value suggests the taken bit is inverted or dropped",
            ),
            EnvelopeBound(
                "static_taken_fraction", 0.2, 1.0,
                "most static branches are taken at least once (Fig 3); check "
                "the taken-flag column",
            ),
            EnvelopeBound(
                "conditional_fraction", 0.05, 0.98,
                "Fig 4: conditional branches dominate the taken mix but never "
                "vanish; an extreme value suggests the kind column is "
                "misdecoded",
            ),
            EnvelopeBound(
                "indirect_fraction", None, 0.6,
                "Fig 4 puts indirect branches well under half the taken mix; "
                "check the kind mapping for swapped direct/indirect codes",
            ),
            EnvelopeBound(
                "target_fraction", 0.05, 2.0,
                "unique targets should be comparable to unique branch PCs "
                "(Fig 7 dedup opportunity); a tiny value means targets are "
                "constant, a huge one means targets are noise",
            ),
            EnvelopeBound(
                "region_fraction", None, 0.5,
                "Fig 7: target regions are a small fraction of branch PCs "
                "(code clusters in few 256 MiB regions); random-looking "
                "addresses suggest byte-swapped or truncated targets",
            ),
            EnvelopeBound(
                "page_fraction", None, 0.98,
                "Fig 7: unique target pages stay below unique branch PCs; "
                "one-target-per-page is address-randomisation noise",
            ),
            EnvelopeBound(
                "targets_per_page", 1.0, None,
                "Fig 6: pages hold multiple branch targets; below 1 is "
                "impossible unless the page split is broken",
            ),
            EnvelopeBound(
                "same_page_fraction", 0.05, 1.0,
                "Fig 8: a large share of branches stay within their 4 KiB "
                "page; near-zero means pc and target columns do not belong "
                "to the same instruction stream",
            ),
            EnvelopeBound(
                "mean_gap", 0.5, 64.0,
                "branches occur every ~4-10 instructions; a huge mean gap "
                "means the gap column is an absolute instruction count, not "
                "a delta",
            ),
        )
    )
