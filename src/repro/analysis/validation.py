"""Calibration scorecard: trace statistics vs the paper's published values.

The synthetic workloads stand in for the paper's anonymised traces, so
their *statistics* must be defensible.  This module formalises every
number Section 3 publishes as a target range and scores a trace (or a
suite) against them.  Tests pin the suite to the scorecard, and the
``validate`` CLI/REPL helper prints it for any custom workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.characterize import (
    distance_stats,
    density_stats,
    taken_stats,
    uniqueness_stats,
)
from repro.workloads.trace import Trace


@dataclass(frozen=True)
class CalibrationTarget:
    """One published statistic and the band we accept for the synthetic."""

    key: str
    description: str
    paper_value: float
    low: float
    high: float

    def check(self, value: float) -> bool:
        return self.low <= value <= self.high


#: Section 3's published statistics, with acceptance bands.  Bands are
#: deliberately wide where the paper itself reports per-app spread.
CALIBRATION_TARGETS: tuple[CalibrationTarget, ...] = (
    CalibrationTarget(
        "static_taken", "static branch PCs ever taken (Fig 3)", 0.55, 0.50, 0.95
    ),
    CalibrationTarget(
        "dynamic_taken", "dynamic branch instances taken (Fig 3)", 0.55, 0.50, 0.90
    ),
    CalibrationTarget(
        "unique_targets", "unique targets / unique PCs (Fig 7)", 0.67, 0.50, 0.92
    ),
    CalibrationTarget(
        "unique_regions", "unique regions / unique PCs (Fig 7)", 0.0007, 0.0, 0.01
    ),
    CalibrationTarget(
        "unique_pages", "unique pages / unique PCs (Fig 7)", 0.05, 0.02, 0.12
    ),
    CalibrationTarget(
        "unique_offsets", "unique offsets / unique PCs (Fig 7)", 0.18, 0.04, 0.40
    ),
    CalibrationTarget(
        "targets_per_page", "branch targets per page (Fig 6)", 18.0, 5.0, 40.0
    ),
    CalibrationTarget(
        "targets_per_region", "branch targets per region (Fig 6)", 2200.0, 150.0, 9000.0
    ),
    CalibrationTarget(
        "same_page", "branches with target in own page (Fig 8)", 0.60, 0.45, 0.95
    ),
)


@dataclass
class CalibrationResult:
    """Scorecard of one trace against every calibration target."""

    name: str
    values: dict[str, float] = field(default_factory=dict)
    passed: dict[str, bool] = field(default_factory=dict)

    @property
    def all_passed(self) -> bool:
        return all(self.passed.values())

    def failures(self) -> list[str]:
        return [key for key, ok in self.passed.items() if not ok]

    def render(self) -> str:
        lines = [f"calibration scorecard: {self.name}"]
        for target in CALIBRATION_TARGETS:
            value = self.values[target.key]
            status = "ok " if self.passed[target.key] else "FAIL"
            lines.append(
                f"  [{status}] {target.key:18s} {value:10.4f}  "
                f"(paper ~{target.paper_value}, band {target.low}..{target.high})"
            )
        return "\n".join(lines)


def measure_calibration_values(trace: Trace) -> dict[str, float]:
    """Compute every calibration statistic for one trace."""
    taken = taken_stats(trace)
    unique = uniqueness_stats(trace)
    density = density_stats(trace)
    distance = distance_stats(trace)
    return {
        "static_taken": taken.static_taken_fraction,
        "dynamic_taken": taken.dynamic_taken_fraction,
        "unique_targets": unique.target_fraction,
        "unique_regions": unique.region_fraction,
        "unique_pages": unique.page_fraction,
        "unique_offsets": unique.offset_fraction,
        "targets_per_page": density.targets_per_page,
        "targets_per_region": density.targets_per_region,
        "same_page": distance.same_page_fraction,
    }


def validate_trace(trace: Trace) -> CalibrationResult:
    """Score one trace against every published target."""
    values = measure_calibration_values(trace)
    result = CalibrationResult(name=trace.name, values=values)
    for target in CALIBRATION_TARGETS:
        result.passed[target.key] = target.check(values[target.key])
    return result


def validate_suite(traces: list[Trace]) -> CalibrationResult:
    """Score the suite-mean statistics (what the paper's figures report)."""
    if not traces:
        raise ValueError("need at least one trace")
    sums: dict[str, float] = {}
    for trace in traces:
        for key, value in measure_calibration_values(trace).items():
            sums[key] = sums.get(key, 0.0) + value
    means = {key: value / len(traces) for key, value in sums.items()}
    result = CalibrationResult(name=f"suite mean ({len(traces)} apps)", values=means)
    for target in CALIBRATION_TARGETS:
        result.passed[target.key] = target.check(means[target.key])
    return result
