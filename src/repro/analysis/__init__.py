"""Characterisation tooling: Section 3 analyses and Figure 1 Top-Down."""

from repro.analysis.characterize import (
    BranchTypeMix,
    DensityStats,
    DistanceStats,
    RuntimeSeries,
    TakenStats,
    UniquenessStats,
    aggregate_mean,
    branch_type_mix,
    density_stats,
    distance_stats,
    runtime_series,
    taken_stats,
    uniqueness_stats,
)
from repro.analysis.topdown import TopDownReport, TopDownRow, topdown_report, topdown_row
from repro.analysis.validation import (
    CALIBRATION_TARGETS,
    CalibrationResult,
    CalibrationTarget,
    measure_calibration_values,
    validate_suite,
    validate_trace,
)

__all__ = [
    "BranchTypeMix",
    "DensityStats",
    "DistanceStats",
    "RuntimeSeries",
    "TakenStats",
    "UniquenessStats",
    "aggregate_mean",
    "branch_type_mix",
    "density_stats",
    "distance_stats",
    "runtime_series",
    "taken_stats",
    "uniqueness_stats",
    "TopDownReport",
    "TopDownRow",
    "topdown_report",
    "topdown_row",
    "CALIBRATION_TARGETS",
    "CalibrationResult",
    "CalibrationTarget",
    "measure_calibration_values",
    "validate_suite",
    "validate_trace",
]
