"""Core parameters: an Icelake-class configuration and future scalings.

Table 3 of the paper lists the simulator parameters of an Icelake-like
core at 3.9 GHz.  We model the parameters that the BTB study is
sensitive to: pipeline width and depth (resteer penalties), fetch-queue
depth (how much frontend run-ahead can hide lookup bubbles), and the
instruction-cache geometry.  Section 5.11 scales width/depth by 1.5x
and 2x to mimic future cores; :meth:`CoreParams.scaled_pipeline` does
the same.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace


def exact_ticks(cycles: float, tick: int) -> int:
    """Convert a cycle quantity to integer ticks, refusing any rounding.

    The tick-based engines only stay bit-identical to sequential float
    accounting if every per-event quantity is an exact multiple of
    ``1 / tick``; a configuration that violates that (e.g. an exotic
    ``resteer_refill_factor``) must fail loudly rather than drift.
    """
    scaled = cycles * tick
    ticks = round(scaled)
    if ticks != scaled:
        raise ValueError(
            f"{cycles!r} cycles is not an exact multiple of 1/{tick} cycles"
        )
    return ticks


@dataclass(frozen=True)
class CoreParams:
    """Microarchitectural parameters of the modelled core.

    Attributes:
        frequency_ghz: core clock (cosmetic; results are per-cycle).
        fetch_width: frontend supply bandwidth in instructions/cycle --
            the prediction-directed fetch path (a 32B prediction window
            at ~4B/instruction), which outruns the backend so the fetch
            queue can bank run-ahead slack.
        commit_width: instructions the backend retires per cycle.
        fetch_queue_entries: decoupling queue between branch-prediction-
            directed fetch and decode (FDIP); deeper queues hide more
            frontend bubbles (Figure 11b).
        decode_resteer_cycles: penalty when a BTB miss on a *direct*
            branch is caught at decode (frontend resteer, Figure 2).
        execute_resteer_cycles: penalty when the miss is only caught at
            execute -- indirect-branch wrong targets and conditional
            direction mispredictions (full pipeline flush).
        resteer_refill_factor: every resteer also discards the fetch
            queue's banked run-ahead; the refill shadow costs
            ``factor * fetch_queue_entries / fetch_width`` extra cycles.
            This is what makes deeper queues raise the price of a
            misprediction (and the value of a better BTB, Figure 11b).
        icache_kib / icache_line_bytes / icache_ways: L1-I geometry.
        icache_miss_cycles: L2 hit latency seen by a fetch that misses
            the L1-I (we do not model L2 misses for code; hot code in
            these traces is L2-resident).
    """

    frequency_ghz: float = 3.9
    fetch_width: int = 8
    commit_width: int = 5
    fetch_queue_entries: int = 64
    decode_resteer_cycles: int = 12
    execute_resteer_cycles: int = 17
    resteer_refill_factor: float = 0.5
    icache_kib: int = 32
    icache_line_bytes: int = 64
    icache_ways: int = 8
    icache_miss_cycles: int = 12

    def __post_init__(self) -> None:
        if self.fetch_width <= 0 or self.commit_width <= 0:
            raise ValueError("widths must be positive")
        if self.fetch_width < self.commit_width:
            raise ValueError("fetch width must be >= commit width (FDIP runs ahead)")
        if self.fetch_queue_entries <= 0:
            raise ValueError("fetch queue must have entries")

    def scaled_pipeline(self, factor: float) -> "CoreParams":
        """Wider-and-deeper future core (Section 5.11).

        Width and queue depth scale up with ``factor``; so do the resteer
        penalties, because a deeper pipeline has more stages between
        prediction and resolution.
        """
        return replace(
            self,
            fetch_width=max(1, round(self.fetch_width * factor)),
            commit_width=max(1, round(self.commit_width * factor)),
            fetch_queue_entries=max(1, round(self.fetch_queue_entries * factor)),
            decode_resteer_cycles=max(1, round(self.decode_resteer_cycles * factor)),
            execute_resteer_cycles=max(1, round(self.execute_resteer_cycles * factor)),
        )

    def with_fetch_queue(self, entries: int) -> "CoreParams":
        """Copy with a different fetch-queue depth (Figure 11b)."""
        return replace(self, fetch_queue_entries=entries)

    @property
    def max_slack_cycles(self) -> float:
        """Run-ahead the fetch queue can bank, in backend-cycles."""
        return self.fetch_queue_entries / self.commit_width

    @property
    def resteer_refill_cycles(self) -> float:
        """Extra cycles per resteer spent refilling the fetch queue."""
        return self.resteer_refill_factor * self.fetch_queue_entries / self.fetch_width

    @property
    def cycle_tick(self) -> int:
        """Ticks per cycle for exact integer cycle accounting.

        Every per-event cycle quantity in the timing model is a multiple
        of ``1 / fetch_width``, ``1 / commit_width``, or ``1/2`` (the
        overlapped ICache-miss cost and the default half-queue refill
        shadow), so ``lcm(2 * fetch_width, commit_width)`` ticks per
        cycle represents all of them exactly as integers.  Integer sums
        are associative, which is what makes sharded runs mergeable
        bit-for-bit (:meth:`repro.frontend.stats.FrontendStats.merge`).
        """
        return math.lcm(2 * self.fetch_width, self.commit_width)


#: The paper's Table 3 core.
ICELAKE = CoreParams()
