"""Columnar frontend engine: chunked vector lookups + resteer-segment replay.

Third engine tier of :class:`repro.frontend.simulator.FrontendSimulator`
(``general`` -> ``fast`` -> ``vector``), bit-identical to both by
construction and by the equivalence suite.  Two phases:

**Phase 1 -- BTB pass.**  The trace is consumed in adaptively-sized
chunks.  Each chunk gets one struct-of-arrays BTB lookup over the
design's mirrors (:mod:`repro.btb.vectorops`), yielding per-event
``(target, hit, latency)`` columns plus a conservative *boundary* mask
marking events whose update would mutate lookup-visible state.  The
clean prefix before each boundary is committed in bulk (update counters,
replacement touches, confidence saturation -- exact replication of the
scalar side effects); the boundary itself is replayed through the real
``observe_fast``.  If the replay journalled a lookup-visible write, the
mirrors are patched and the chunk restarts after the boundary; otherwise
(a confidence drain, a non-allocating miss) the scan continues inside
the same chunk.  Chunks grow after clean blocks and shrink toward the
observed resteer density after mutations.

**Phase 2 -- timing.**  Branch-resolution outcomes (direction, RAS, BTB
miss, penalty kind, lookup bubbles) are pure element-wise functions of
the phase-1 columns and the decoded trace's replayed columns, so the
whole timing model vectorises: the ICache refill window is a shifted
running maximum over penalty positions, and the fetch-queue slack walk
-- the only sequential recurrence -- collapses to a scalar loop over
*interesting* events (penalties and supply-over-demand blocks) with
prefix-summed slack gains in between, because slack clipping commutes
with non-negative accumulation.  All accounting is integer ticks, summed
over the measured range, exactly as the scalar engines do.

The RAS is replayed once per ``(returns_use_ras, depth)`` by the decoded
trace (like ICache and direction), which is why the vector tier requires
a pristine stack; full runs adopt the replayed final state.
"""

from __future__ import annotations

import numpy as np

from repro.btb.vectorops import NO_TARGET, make_vector_ops
from repro.frontend.params import exact_ticks
from repro.frontend.stats import FrontendStats

#: Adaptive chunk bounds (module-level so tests can shrink them to force
#: boundary events onto chunk edges).
CHUNK_MIN = 256
CHUNK_START = 2048
CHUNK_MAX = 16384


def run_vector(sim, trace, warmup_fraction, measure_range=None):
    """Run one simulation on the vector engine; returns FrontendStats.

    ``sim`` is the :class:`FrontendSimulator` (the caller has already
    checked ``_vector_path_applicable``); semantics mirror ``_run_fast``
    exactly, including warm-crossing stats resets, shard measure ranges,
    and end-of-trace structure adoption on full runs.
    """
    from repro.frontend.simulator import (
        _OVERLAPPED_MISS_CYCLES,
        _REFILL_WINDOW,
        _KIND_NAMES,
    )

    params = sim.params
    btb = sim.btb
    decoded = trace.decoded()
    n_events = decoded.n_events
    if measure_range is None:
        warm_limit = int(n_events * warmup_fraction)
        stop = n_events
    else:
        warm_limit, stop = measure_range
    tick = params.cycle_tick
    supply_col, demand_col = decoded.supply_demand_arrays(
        tick // params.fetch_width, tick // params.commit_width
    )
    icache_col, icache_final = decoded.icache_miss_array(
        params.icache_kib, params.icache_line_bytes, params.icache_ways
    )
    signature = sim._direction_signature()
    if signature == "perfect":
        dir_ok = np.ones(n_events, dtype=np.bool_)
        direction_final = None
    else:
        dir_ok, direction_final = decoded.direction_array(signature)
    ras_ok, ras_final = decoded.ras_outcomes(sim.returns_use_ras, sim.ras.depth)

    cols = decoded.vector_columns()
    taken_col = cols["taken"]
    targets_col = cols["targets"]
    kinds_col = cols["kinds"]
    is_indirect_col = cols["is_indirect"]
    is_return_col = cols["is_return"]
    instructions_col = cols["instructions"]

    ops = make_vector_ops(btb, trace, sim.returns_use_ras)
    active_col = ops.active

    # ---- phase 1: BTB pass --------------------------------------------
    lt = np.full(stop, NO_TARGET, dtype=np.int64)
    lh = np.zeros(stop, dtype=np.bool_)
    lat = np.ones(stop, dtype=np.int64)

    observe = btb.observe_fast
    pcs_list = trace.pcs
    targets_list = trace.targets
    takens_list = trace.takens
    hashes_list = decoded.hashes
    same_page_list = decoded.same_page
    is_indirect_list = decoded.is_indirect

    reset_pending = 0 < warm_limit < stop
    chunk = CHUNK_START
    i = 0
    ops.begin()
    try:
        while i < stop:
            if reset_pending and i == warm_limit:
                btb.reset_stats()
                reset_pending = False
            hi = i + chunk
            if hi > stop:
                hi = stop
            if reset_pending and hi > warm_limit:
                # Force a block break on the warm crossing so the stats
                # reset lands between events, as in the scalar engines.
                hi = warm_limit
            blk = ops.lookup_block(i, hi)
            # Optimistically copy the whole block's lookup columns once;
            # replayed boundaries overwrite single positions and a
            # truncated tail is rewritten by the next block.
            lt[i:hi] = blk.lt
            lh[i:hi] = blk.lh
            lat[i:hi] = blk.lat
            pos = i
            # ``valid_hi``: how far this block's precomputed lookups are
            # still valid.  A replayed boundary that journals a write
            # truncates it to the first later event that reads the
            # written state (usually none -- the scan keeps going).
            valid_hi = hi
            for b in blk.bounds:
                if b >= valid_hi:
                    break
                if b > pos:
                    ops.commit(blk, pos, b)
                replay_lt, replay_lh, replay_lat = observe(
                    pcs_list[b],
                    targets_list[b],
                    takens_list[b],
                    is_indirect_list[b],
                    hashes_list[b],
                    same_page_list[b],
                )
                lt[b] = NO_TARGET if replay_lt is None else replay_lt
                lh[b] = replay_lh
                lat[b] = replay_lat
                pos = b + 1
                if ops.absorb():
                    affected = ops.first_affected(blk, pos, valid_hi)
                    if affected < valid_hi:
                        valid_hi = affected
            if pos < valid_hi:
                ops.commit(blk, pos, valid_hi)
                pos = valid_hi
            if valid_hi < hi:
                # Truncated by a mutation: retry with twice the distance
                # just consumed so chunk size tracks mutation density.
                chunk = (pos - i) * 2
                if chunk < CHUNK_MIN:
                    chunk = CHUNK_MIN
                elif chunk > CHUNK_MAX:
                    chunk = CHUNK_MAX
            elif chunk < CHUNK_MAX:
                chunk = min(chunk * 2, CHUNK_MAX)
            i = pos
    finally:
        ops.end()

    # ---- phase 2: outcomes, penalties, timing -------------------------
    act = active_col[:stop]
    taken = taken_col[:stop]
    target = targets_col[:stop]
    taken_active = act & taken
    btb_missed = taken_active & (lt != target)
    dir_mis = act & ~dir_ok[:stop]
    ras_mis = ~ras_ok[:stop]
    exec_like = is_indirect_col[:stop] | is_return_col[:stop]
    dir_ok_act = act & ~dir_mis
    exec_pen = ras_mis | dir_mis | (dir_ok_act & btb_missed & exec_like)
    dec_pen = dir_ok_act & btb_missed & ~exec_like
    ind_mis = dir_ok_act & btb_missed & is_indirect_col[:stop]
    bubble_mask = dir_ok_act & ~btb_missed & taken & (lat > 1)
    bubble_ticks = np.where(bubble_mask, (lat - 1) * tick, 0)
    has_pen = exec_pen | dec_pen

    # ICache refill window: a miss is a demand (full-latency) miss when
    # the last penalty lies at most _REFILL_WINDOW events back.
    index_arr = np.arange(stop, dtype=np.int64)
    sentinel = np.int64(-(_REFILL_WINDOW + 1))
    pen_pos = np.where(has_pen, index_arr, sentinel)
    last_pen = np.empty(stop, dtype=np.int64)
    if stop:
        np.maximum.accumulate(pen_pos, out=pen_pos)
        last_pen[0] = sentinel
        last_pen[1:] = pen_pos[:-1]
    in_refill = (index_arr - last_pen) <= _REFILL_WINDOW
    miss_ticks = params.icache_miss_cycles * tick
    overlap_ticks = exact_ticks(_OVERLAPPED_MISS_CYCLES, tick)
    icache_cost = icache_col[:stop] * np.where(in_refill, miss_ticks, overlap_ticks)

    refill_shadow = exact_ticks(params.resteer_refill_cycles, tick)
    decode_penalty = params.decode_resteer_cycles * tick + refill_shadow
    execute_penalty = params.execute_resteer_cycles * tick + refill_shadow
    slack_max = exact_ticks(params.max_slack_cycles, tick)

    # Fetch-queue slack walk.  d = demand - supply per event; between
    # interesting events every d is non-negative (fetch outpaces commit
    # unless an ICache charge or lookup bubble intervenes), and clipped
    # accumulation of non-negative gains equals clipping the prefix sum
    # once, so the walk only visits penalties and d < 0 events.
    demand = demand_col[:stop]
    d_arr = demand - supply_col[:stop] - icache_cost - bubble_ticks
    interesting = np.flatnonzero(has_pen | (d_arr < 0))
    prefix = np.concatenate((np.zeros(1, dtype=np.int64), np.cumsum(d_arr)))
    measured_start = warm_limit if warm_limit < stop else stop
    slack = 0
    overrun_total = 0
    icache_stall_ticks = 0
    btb_bubble_ticks = 0
    event_at = interesting.tolist()
    d_at = d_arr[interesting].tolist()
    pen_at = has_pen[interesting].tolist()
    icache_at = icache_cost[interesting].tolist()
    bubble_at = bubble_ticks[interesting].tolist()
    prefix_at = prefix[interesting].tolist()
    gap_base = 0
    for k in range(len(event_at)):
        slack += prefix_at[k] - gap_base
        if slack > slack_max:
            slack = slack_max
        d_k = d_at[k]
        x = slack + d_k
        if x < 0:
            slack = 0
            if event_at[k] >= measured_start:
                overrun = -x
                overrun_total += overrun
                ic = icache_at[k]
                icache_part = ic if ic < overrun else overrun
                icache_stall_ticks += icache_part
                rest = overrun - icache_part
                bubble = bubble_at[k]
                btb_bubble_ticks += bubble if bubble < rest else rest
        elif x < slack_max:
            slack = x
        else:
            slack = slack_max
        if pen_at[k]:
            slack = 0
        gap_base = prefix_at[k] + d_k

    # ---- measured-range accounting ------------------------------------
    m = slice(measured_start, stop)
    decode_resteers = int(np.count_nonzero(dec_pen[m]))
    execute_resteers = int(np.count_nonzero(exec_pen[m]))
    demand_measured = int(demand[m].sum())
    cycles_ticks = (
        demand_measured
        + overrun_total
        + decode_resteers * decode_penalty
        + execute_resteers * execute_penalty
    )

    stats = FrontendStats(
        instructions=int(instructions_col[m].sum()),
        branches=stop - measured_start,
        taken_branches=int(np.count_nonzero(taken[m])),
        btb_misses=int(np.count_nonzero(btb_missed[m])),
        decode_resteers=decode_resteers,
        execute_resteers=execute_resteers,
        direction_mispredicts=int(np.count_nonzero(dir_mis[m])),
        indirect_mispredicts=int(np.count_nonzero(ind_mis[m])),
        ras_mispredicts=int(np.count_nonzero(ras_mis[m])),
        icache_misses=int(icache_col[m].sum()),
        extra_latency_lookups=int(np.count_nonzero(bubble_mask[m])),
    )
    stats.set_cycle_buckets(
        tick,
        cycles_ticks,
        demand_measured,
        icache_stall_ticks,
        btb_bubble_ticks,
        decode_resteers * decode_penalty,
        execute_resteers * execute_penalty,
    )

    # BTBStats.record_outcome equivalents over the measured range (the
    # warm crossing's reset_stats already zeroed the live counters).
    btb_stats = btb.stats
    btb_stats.lookups += int(np.count_nonzero(act[m]))
    btb_stats.taken_lookups += int(np.count_nonzero(taken_active[m]))
    btb_stats.hits += int(np.count_nonzero(taken_active[m] & (lt[m] == target[m])))
    misses_m = btb_missed[m]
    btb_stats.misses += int(np.count_nonzero(misses_m))
    btb_stats.wrong_target += int(np.count_nonzero(misses_m & lh[m]))
    kind_counts = np.bincount(
        kinds_col[:stop][m][misses_m], minlength=len(_KIND_NAMES)
    )
    misses_by_kind = btb_stats.misses_by_kind
    for kind_value, count in enumerate(kind_counts.tolist()):
        if count:
            name = _KIND_NAMES[kind_value]
            misses_by_kind[name] = misses_by_kind.get(name, 0) + count

    # Adopt replayed end-of-trace structure state on full runs, exactly
    # like the fast engine (shard runs are one-shot and leave the
    # structures untouched).
    if stop == n_events:
        sim.icache = icache_final.clone()
        if direction_final is not None:
            sim.direction = direction_final.clone()
        sim.ras = ras_final.clone()
    return stats
