"""Instruction-cache model.

A plain set-associative L1-I with LRU replacement, consulted for every
code line a basic block touches.  Its job in this study is to charge
realistic frontend-supply stalls so that BTB-induced resteers can be
put in proportion (Figure 1's Top-Down breakdown), not to be a detailed
memory-hierarchy model -- misses cost a flat L2-hit latency.
"""

from __future__ import annotations


class ICache:
    """Set-associative instruction cache with LRU replacement."""

    def __init__(self, size_kib: int = 32, line_bytes: int = 64, ways: int = 8) -> None:
        if size_kib <= 0 or line_bytes <= 0 or ways <= 0:
            raise ValueError("cache geometry must be positive")
        total_lines = size_kib * 1024 // line_bytes
        if total_lines % ways:
            raise ValueError("line count must be divisible by ways")
        self.sets = total_lines // ways
        self.ways = ways
        self.line_bytes = line_bytes
        self._line_shift = line_bytes.bit_length() - 1
        # Per-set list of resident line addresses, most recent last.
        self._lines: list[list[int]] = [[] for _ in range(self.sets)]
        self.accesses = 0
        self.misses = 0

    def touch_line(self, line_addr: int) -> bool:
        """Access one line; returns True on hit."""
        self.accesses += 1
        index = line_addr % self.sets
        resident = self._lines[index]
        if line_addr in resident:
            resident.remove(line_addr)
            resident.append(line_addr)
            return True
        self.misses += 1
        if len(resident) >= self.ways:
            resident.pop(0)
        resident.append(line_addr)
        return False

    def touch_range(self, start: int, end: int) -> int:
        """Access every line in ``[start, end]``; returns the miss count."""
        if end < start:
            end = start
        first = start >> self._line_shift
        last = end >> self._line_shift
        misses = 0
        for line_addr in range(first, last + 1):
            if not self.touch_line(line_addr):
                misses += 1
        return misses

    def clone(self) -> "ICache":
        """Independent copy of the full cache state (fast list copies).

        The decoded-trace engine replays the reference stream once per
        geometry and hands each simulator a clone of the end state, so
        post-run inspection matches a live run without re-simulating.
        """
        clone = ICache.__new__(ICache)
        clone.sets = self.sets
        clone.ways = self.ways
        clone.line_bytes = self.line_bytes
        clone._line_shift = self._line_shift
        clone._lines = [list(lines) for lines in self._lines]
        clone.accesses = self.accesses
        clone.misses = self.misses
        return clone

    @property
    def miss_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    def snapshot(self) -> dict:
        """Flat metric snapshot for the observability registry."""
        return {
            "icache_accesses_total": self.accesses,
            "icache_misses_total": self.misses,
            "icache_miss_rate": self.miss_rate,
            "icache_lines": self.sets * self.ways,
        }
