"""Frontend timing model: FDIP pipeline, ICache, IPC accounting.

* :class:`CoreParams` / :data:`ICELAKE` -- the Table 3 core and its
  Section 5.11 future scalings;
* :class:`ICache` -- the L1 instruction cache;
* :class:`FrontendSimulator` -- the trace-driven timing model;
* :class:`FrontendStats` -- Top-Down style cycle/IPC accounting.
"""

from repro.frontend.params import CoreParams, ICELAKE
from repro.frontend.icache import ICache
from repro.frontend.stats import FrontendStats
from repro.frontend.simulator import FrontendSimulator

__all__ = ["CoreParams", "ICELAKE", "ICache", "FrontendStats", "FrontendSimulator"]
