"""Cycle accounting for the frontend timing model.

Buckets follow the Top-Down methodology (Yasin, ISPASS 2014) that the
paper's Figure 1 uses: retiring (base), frontend-bound (split into
ICache supply stalls, BTB-resteer stalls, and BTB lookup bubbles), and
bad speculation (execute-stage flushes).

Cycle buckets are carried twice: as floats (the reporting surface every
figure reads) and as exact integer *ticks* of ``1 / cycle_tick`` cycles
(``CoreParams.cycle_tick``).  The engines accumulate in ticks and derive
each float with a single division, so the floats are a pure function of
the tick totals.  Because integer addition is associative, per-shard
stats from a partitioned run can be summed in :meth:`FrontendStats.merge`
and reproduce the unsharded floats bit for bit -- something float
accumulation cannot do (``commit_width=5`` makes per-event demand
non-dyadic, so float sums are partition-order-dependent).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Iterable


@dataclass
class FrontendStats:
    """Aggregated results of one frontend simulation."""

    instructions: int = 0
    cycles: float = 0.0
    # Top-Down style cycle buckets.
    base_cycles: float = 0.0
    icache_stall_cycles: float = 0.0
    btb_bubble_cycles: float = 0.0
    btb_resteer_cycles: float = 0.0
    bad_speculation_cycles: float = 0.0
    # Event counts.
    branches: int = 0
    taken_branches: int = 0
    btb_misses: int = 0
    decode_resteers: int = 0
    execute_resteers: int = 0
    direction_mispredicts: int = 0
    indirect_mispredicts: int = 0
    ras_mispredicts: int = 0
    icache_misses: int = 0
    extra_latency_lookups: int = 0
    # Exact integer mirrors of the cycle buckets, in units of
    # ``1 / cycle_tick`` cycles (0 = this stats object predates tick
    # accounting or was built by hand; such stats cannot be merged).
    cycle_tick: int = 0
    cycles_ticks: int = 0
    base_cycles_ticks: int = 0
    icache_stall_ticks: int = 0
    btb_bubble_ticks: int = 0
    btb_resteer_ticks: int = 0
    bad_speculation_ticks: int = 0

    #: (float bucket, integer tick mirror) pairs kept in lockstep.
    _TICK_FIELDS = (
        ("cycles", "cycles_ticks"),
        ("base_cycles", "base_cycles_ticks"),
        ("icache_stall_cycles", "icache_stall_ticks"),
        ("btb_bubble_cycles", "btb_bubble_ticks"),
        ("btb_resteer_cycles", "btb_resteer_ticks"),
        ("bad_speculation_cycles", "bad_speculation_ticks"),
    )

    #: Event counters summed field-wise by :meth:`merge`.
    _COUNT_FIELDS = (
        "instructions",
        "branches",
        "taken_branches",
        "btb_misses",
        "decode_resteers",
        "execute_resteers",
        "direction_mispredicts",
        "indirect_mispredicts",
        "ras_mispredicts",
        "icache_misses",
        "extra_latency_lookups",
    )

    @classmethod
    def merge(cls, parts: Iterable["FrontendStats"]) -> "FrontendStats":
        """Exactly combine per-shard stats into the unsharded result.

        Integer event counters and tick totals are summed; the float
        cycle buckets are then derived from the merged ticks with the
        same single division the engines use, so a merge over *any*
        partitioning of a run is bit-identical to the unsharded run.

        Raises ``ValueError`` on empty input, on stats that carry no
        tick information (``cycle_tick == 0``: hand-built or pre-tick
        stats have no exact representation to merge), or on parts with
        mismatched tick denominators (different core geometries).
        """
        parts = list(parts)
        if not parts:
            raise ValueError("cannot merge zero stats shards")
        tick = parts[0].cycle_tick
        if tick <= 0:
            raise ValueError("stats without tick accounting cannot be merged exactly")
        for part in parts:
            if part.cycle_tick != tick:
                raise ValueError(
                    f"mismatched cycle_tick in merge: {part.cycle_tick} != {tick}"
                )
        merged = cls(cycle_tick=tick)
        for name in cls._COUNT_FIELDS:
            setattr(merged, name, sum(getattr(part, name) for part in parts))
        for float_name, tick_name in cls._TICK_FIELDS:
            total = sum(getattr(part, tick_name) for part in parts)
            setattr(merged, tick_name, total)
            setattr(merged, float_name, total / tick)
        return merged

    def set_cycle_buckets(
        self,
        cycle_tick: int,
        cycles_ticks: int,
        base_cycles_ticks: int,
        icache_stall_ticks: int,
        btb_bubble_ticks: int,
        btb_resteer_ticks: int,
        bad_speculation_ticks: int,
    ) -> None:
        """Adopt engine tick totals and derive the float buckets.

        Every engine finishes a run through this method, so the float
        buckets are always ``ticks / cycle_tick`` -- one correctly-
        rounded division per bucket, reproduced exactly by
        :meth:`merge` from the summed shard ticks.
        """
        self.cycle_tick = cycle_tick
        self.cycles_ticks = cycles_ticks
        self.base_cycles_ticks = base_cycles_ticks
        self.icache_stall_ticks = icache_stall_ticks
        self.btb_bubble_ticks = btb_bubble_ticks
        self.btb_resteer_ticks = btb_resteer_ticks
        self.bad_speculation_ticks = bad_speculation_ticks
        self.cycles = cycles_ticks / cycle_tick
        self.base_cycles = base_cycles_ticks / cycle_tick
        self.icache_stall_cycles = icache_stall_ticks / cycle_tick
        self.btb_bubble_cycles = btb_bubble_ticks / cycle_tick
        self.btb_resteer_cycles = btb_resteer_ticks / cycle_tick
        self.bad_speculation_cycles = bad_speculation_ticks / cycle_tick

    @property
    def ipc(self) -> float:
        """Instructions per cycle."""
        if self.cycles <= 0:
            return 0.0
        return self.instructions / self.cycles

    @property
    def btb_mpki(self) -> float:
        """BTB misses per kilo-instruction (the paper's MPKI metric)."""
        if self.instructions <= 0:
            return 0.0
        return 1000.0 * self.btb_misses / self.instructions

    @property
    def frontend_stall_cycles(self) -> float:
        return self.icache_stall_cycles + self.btb_bubble_cycles + self.btb_resteer_cycles

    @property
    def frontend_bound_fraction(self) -> float:
        """Share of all cycles lost to frontend supply (Figure 1)."""
        if self.cycles <= 0:
            return 0.0
        return self.frontend_stall_cycles / self.cycles

    @property
    def btb_resteer_share_of_frontend(self) -> float:
        """Share of frontend stalls caused by BTB resteers (Figure 1)."""
        total = self.frontend_stall_cycles
        if total <= 0:
            return 0.0
        return (self.btb_resteer_cycles + self.btb_bubble_cycles) / total

    @property
    def bad_speculation_fraction(self) -> float:
        if self.cycles <= 0:
            return 0.0
        return self.bad_speculation_cycles / self.cycles

    @property
    def taken_branch_fraction(self) -> float:
        """Dynamically-taken share of all branches."""
        if self.branches <= 0:
            return 0.0
        return self.taken_branches / self.branches

    @property
    def btb_miss_rate(self) -> float:
        """BTB misses per taken branch (the per-lookup counterpart of MPKI)."""
        if self.taken_branches <= 0:
            return 0.0
        return self.btb_misses / self.taken_branches

    def speedup_over(self, baseline: "FrontendStats") -> float:
        """IPC speedup of this run relative to ``baseline`` (1.0 = equal)."""
        if baseline.ipc <= 0:
            return 0.0
        return self.ipc / baseline.ipc

    def mpki_reduction_vs(self, baseline: "FrontendStats") -> float:
        """Fractional BTB-MPKI reduction relative to ``baseline``."""
        if baseline.btb_mpki <= 0:
            return 0.0
        return 1.0 - self.btb_mpki / baseline.btb_mpki

    #: Derived properties serialised by :meth:`to_dict` (all are guarded
    #: against empty runs: any ratio over zero events is reported as 0.0).
    _DERIVED = (
        "ipc",
        "btb_mpki",
        "btb_miss_rate",
        "taken_branch_fraction",
        "frontend_stall_cycles",
        "frontend_bound_fraction",
        "btb_resteer_share_of_frontend",
        "bad_speculation_fraction",
    )

    def to_dict(self, derived: bool = True) -> dict:
        """JSON-serialisable snapshot: raw fields plus derived ratios.

        The ``--metrics-out`` surface and the report telemetry appendix
        use this; ``derived=False`` returns only the raw counters.
        """
        data = {f.name: getattr(self, f.name) for f in fields(self)}
        if derived:
            for name in self._DERIVED:
                data[name] = getattr(self, name)
        return data
