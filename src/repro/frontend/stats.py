"""Cycle accounting for the frontend timing model.

Buckets follow the Top-Down methodology (Yasin, ISPASS 2014) that the
paper's Figure 1 uses: retiring (base), frontend-bound (split into
ICache supply stalls, BTB-resteer stalls, and BTB lookup bubbles), and
bad speculation (execute-stage flushes).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


@dataclass
class FrontendStats:
    """Aggregated results of one frontend simulation."""

    instructions: int = 0
    cycles: float = 0.0
    # Top-Down style cycle buckets.
    base_cycles: float = 0.0
    icache_stall_cycles: float = 0.0
    btb_bubble_cycles: float = 0.0
    btb_resteer_cycles: float = 0.0
    bad_speculation_cycles: float = 0.0
    # Event counts.
    branches: int = 0
    taken_branches: int = 0
    btb_misses: int = 0
    decode_resteers: int = 0
    execute_resteers: int = 0
    direction_mispredicts: int = 0
    indirect_mispredicts: int = 0
    ras_mispredicts: int = 0
    icache_misses: int = 0
    extra_latency_lookups: int = 0

    @property
    def ipc(self) -> float:
        """Instructions per cycle."""
        if self.cycles <= 0:
            return 0.0
        return self.instructions / self.cycles

    @property
    def btb_mpki(self) -> float:
        """BTB misses per kilo-instruction (the paper's MPKI metric)."""
        if self.instructions <= 0:
            return 0.0
        return 1000.0 * self.btb_misses / self.instructions

    @property
    def frontend_stall_cycles(self) -> float:
        return self.icache_stall_cycles + self.btb_bubble_cycles + self.btb_resteer_cycles

    @property
    def frontend_bound_fraction(self) -> float:
        """Share of all cycles lost to frontend supply (Figure 1)."""
        if self.cycles <= 0:
            return 0.0
        return self.frontend_stall_cycles / self.cycles

    @property
    def btb_resteer_share_of_frontend(self) -> float:
        """Share of frontend stalls caused by BTB resteers (Figure 1)."""
        total = self.frontend_stall_cycles
        if total <= 0:
            return 0.0
        return (self.btb_resteer_cycles + self.btb_bubble_cycles) / total

    @property
    def bad_speculation_fraction(self) -> float:
        if self.cycles <= 0:
            return 0.0
        return self.bad_speculation_cycles / self.cycles

    @property
    def taken_branch_fraction(self) -> float:
        """Dynamically-taken share of all branches."""
        if self.branches <= 0:
            return 0.0
        return self.taken_branches / self.branches

    @property
    def btb_miss_rate(self) -> float:
        """BTB misses per taken branch (the per-lookup counterpart of MPKI)."""
        if self.taken_branches <= 0:
            return 0.0
        return self.btb_misses / self.taken_branches

    def speedup_over(self, baseline: "FrontendStats") -> float:
        """IPC speedup of this run relative to ``baseline`` (1.0 = equal)."""
        if baseline.ipc <= 0:
            return 0.0
        return self.ipc / baseline.ipc

    def mpki_reduction_vs(self, baseline: "FrontendStats") -> float:
        """Fractional BTB-MPKI reduction relative to ``baseline``."""
        if baseline.btb_mpki <= 0:
            return 0.0
        return 1.0 - self.btb_mpki / baseline.btb_mpki

    #: Derived properties serialised by :meth:`to_dict` (all are guarded
    #: against empty runs: any ratio over zero events is reported as 0.0).
    _DERIVED = (
        "ipc",
        "btb_mpki",
        "btb_miss_rate",
        "taken_branch_fraction",
        "frontend_stall_cycles",
        "frontend_bound_fraction",
        "btb_resteer_share_of_frontend",
        "bad_speculation_fraction",
    )

    def to_dict(self, derived: bool = True) -> dict:
        """JSON-serialisable snapshot: raw fields plus derived ratios.

        The ``--metrics-out`` surface and the report telemetry appendix
        use this; ``derived=False`` returns only the raw counters.
        """
        data = {f.name: getattr(self, f.name) for f in fields(self)}
        if derived:
            for name in self._DERIVED:
                data[name] = getattr(self, name)
        return data
