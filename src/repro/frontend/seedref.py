"""Frozen seed reference engine (the pre-optimization implementation).

The hot-path engine (``FrontendSimulator`` fast path, flat-storage
``PDedeBTB``/``BaselineBTB``) is an *optimization*, and its contract is
bit-identical ``FrontendStats`` and BTB counters.  That contract needs a
referee that cannot drift with the code under test, so this module keeps
a verbatim copy of the seed implementations:

* :class:`SeedFrontendSimulator` -- the original per-event ``run`` loop
  (``_EventView`` allocation per branch, live ICache / direction calls);
* :class:`SeedPDedeBTB` / :class:`SeedBaselineBTB` /
  :class:`SeedTwoLevelBTB` -- the original list-of-lists storage with
  O(ways) ``way in self._short_ways`` membership scans.

Shared leaf modules (address hashing, replacement policies, dedup
tables, ICache, RAS, direction predictors) are imported, not copied:
they are unchanged by the optimization pass, so a behavioural change in
one of them is *supposed* to move both engines together.

Two consumers:

* ``tests/test_engine_equivalence.py`` runs every design through both
  engines and asserts exact equality;
* ``benchmarks/bench_hotpath.py`` measures the live speedup ratio of the
  optimized engine over this one (machine-independent, unlike absolute
  events/sec).

Do not "fix" or modernise this file alongside engine changes -- that is
the one edit that would blind the referee.  Behavioural changes to the
model belong in the live engine plus a deliberate update here.

Deliberate update (sharded-scheduler PR): cycle accounting moved from
sequential float accumulation to exact integer ticks
(``CoreParams.cycle_tick``; see :class:`FrontendStats`), in lockstep
with the live engines.  This is a model-accounting change -- cycle
buckets shift by ulps; every microarchitectural event outcome is
untouched -- and it is what makes per-shard stats mergeable bit for bit
(``FrontendStats.merge``), with this referee still pinning both live
engines exactly.
"""

from __future__ import annotations

from repro.branch.address import (
    ADDRESS_BITS,
    REGION_BITS,
    PAGE_IN_REGION_BITS,
    fold_bits,
    hash_pc,
    join_target,
    page_base,
    page_in_region,
    page_offset,
    region_id,
    same_page,
)
from repro.branch.direction import DirectionPredictor, TageLitePredictor
from repro.branch.types import BranchEvent, BranchKind
from repro.btb.base import BTBLookup, BranchTargetPredictor
from repro.btb.ittage import ITTagePredictor
from repro.btb.ras import ReturnAddressStack
from repro.btb.replacement import make_replacement_policy
from repro.core.config import PDedeConfig, PDedeMode
from repro.core.tables import DedupValueTable
from repro.frontend.icache import ICache
from repro.frontend.params import CoreParams, ICELAKE, exact_ticks
from repro.frontend.stats import FrontendStats
from repro.workloads.trace import Trace

_NO_PTR = -1
_INSTR_BYTES = 4
_REFILL_WINDOW = 4
_OVERLAPPED_MISS_CYCLES = 1.5

_KIND_RETURN = int(BranchKind.RETURN)
_KIND_COND = int(BranchKind.COND_DIRECT)
_KINDS = [BranchKind(value) for value in range(len(BranchKind))]
_IS_CALL = [kind.is_call for kind in _KINDS]
_IS_INDIRECT = [kind.is_indirect for kind in _KINDS]


class SeedBaselineBTB(BranchTargetPredictor):
    """Verbatim seed copy of :class:`repro.btb.baseline.BaselineBTB`."""

    def __init__(
        self,
        entries: int = 4096,
        ways: int = 8,
        tag_bits: int = 12,
        target_bits: int = ADDRESS_BITS,
        conf_bits: int = 2,
        replacement: str = "srrip",
        srrip_bits: int = 3,
        pid_bits: int = 1,
        latency: int = 1,
        allocate_indirect: bool = True,
    ) -> None:
        super().__init__()
        if entries <= 0:
            raise ValueError("entries must be positive")
        if entries % ways:
            raise ValueError("entries must be divisible by ways")
        self.entries = entries
        self.ways = ways
        self.sets = entries // ways
        self.tag_bits = tag_bits
        self.target_bits = target_bits
        self.conf_bits = conf_bits
        self._conf_max = (1 << conf_bits) - 1
        self.srrip_bits = srrip_bits
        self.pid_bits = pid_bits
        self.latency = latency
        self.allocate_indirect = allocate_indirect
        self._sets_pow2 = self.sets & (self.sets - 1) == 0
        self._index_mask = self.sets - 1
        self.replacement_name = replacement
        repl_kwargs = {"m": srrip_bits} if replacement == "srrip" else {}
        self._policies = [
            make_replacement_policy(replacement, ways, **repl_kwargs)
            for _ in range(self.sets)
        ]
        self._valid = [[False] * ways for _ in range(self.sets)]
        self._tags = [[0] * ways for _ in range(self.sets)]
        self._targets = [[0] * ways for _ in range(self.sets)]
        self._conf = [[0] * ways for _ in range(self.sets)]

    def _slot(self, pc: int) -> tuple[int, int]:
        hashed = hash_pc(pc)
        index = hashed & self._index_mask if self._sets_pow2 else hashed % self.sets
        return index, (hashed >> 40) & ((1 << self.tag_bits) - 1)

    def _find_way(self, index: int, tag: int) -> int | None:
        valid = self._valid[index]
        tags = self._tags[index]
        for way in range(self.ways):
            if valid[way] and tags[way] == tag:
                return way
        return None

    def lookup(self, pc: int) -> BTBLookup:
        index, tag = self._slot(pc)
        way = self._find_way(index, tag)
        if way is None:
            return BTBLookup(hit=False, target=None, latency=self.latency)
        self._policies[index].on_hit(way)
        return BTBLookup(
            hit=True,
            target=self._targets[index][way],
            latency=self.latency,
            provider="btb",
        )

    def update(self, event: BranchEvent) -> None:
        self.stats.updates += 1
        if not event.taken:
            return
        if event.kind.is_indirect and not self.allocate_indirect:
            return
        index, tag = self._slot(event.pc)
        way = self._find_way(index, tag)
        if way is not None:
            self._train_existing(index, way, event.target)
            return
        self._allocate(index, tag, event.target)

    def _train_existing(self, index: int, way: int, target: int) -> None:
        conf = self._conf[index]
        if self._targets[index][way] == target:
            if conf[way] < self._conf_max:
                conf[way] += 1
        elif conf[way] > 0:
            conf[way] -= 1
        else:
            self._targets[index][way] = target
        self._policies[index].on_hit(way)

    def _allocate(self, index: int, tag: int, target: int) -> None:
        policy = self._policies[index]
        way = policy.victim(self._valid[index])
        if self._valid[index][way]:
            self.stats.evictions += 1
        self._valid[index][way] = True
        self._tags[index][way] = tag
        self._targets[index][way] = target
        self._conf[index][way] = 0
        policy.on_insert(way)
        self.stats.allocations += 1

    def storage_bits(self) -> int:
        per_entry = (
            self.pid_bits
            + self.tag_bits
            + self.target_bits
            + self.conf_bits
            + self._policies[0].metadata_bits_per_entry()
        )
        return self.entries * per_entry

    def occupancy(self) -> int:
        return sum(sum(valid) for valid in self._valid)

    def metrics(self) -> dict:
        data = super().metrics()
        data["btb_entries"] = self.entries
        data["btb_ways"] = self.ways
        return data


class SeedPDedeBTB(BranchTargetPredictor):
    """Verbatim seed copy of :class:`repro.core.pdede.PDedeBTB`."""

    def __init__(self, config: PDedeConfig | None = None) -> None:
        super().__init__()
        self.config = config or PDedeConfig()
        cfg = self.config
        self._sets = cfg.btbm_sets
        self._ways = cfg.btbm_ways
        self._sets_pow2 = self._sets & (self._sets - 1) == 0
        self._index_mask = self._sets - 1
        self._conf_max = (1 << cfg.conf_bits) - 1
        on_evict_page = self._invalidate_page_ptr if cfg.invalidate_stale_pointers else None
        on_evict_region = (
            self._invalidate_region_ptr if cfg.invalidate_stale_pointers else None
        )
        self.page_btb = DedupValueTable(
            cfg.page_entries,
            cfg.page_ways,
            PAGE_IN_REGION_BITS,
            replacement=cfg.replacement,
            srrip_bits=cfg.srrip_bits,
            name="page-btb",
            on_evict=on_evict_page,
        )
        self.region_btb = DedupValueTable(
            cfg.region_entries,
            cfg.region_entries,
            REGION_BITS,
            replacement=cfg.replacement,
            srrip_bits=cfg.srrip_bits,
            name="region-btb",
            on_evict=on_evict_region,
        )
        sets, ways = self._sets, self._ways
        self._valid = [[False] * ways for _ in range(sets)]
        self._tags = [[0] * ways for _ in range(sets)]
        self._delta = [[False] * ways for _ in range(sets)]
        self._offsets = [[0] * ways for _ in range(sets)]
        self._page_ptr = [[_NO_PTR] * ways for _ in range(sets)]
        self._region_ptr = [[_NO_PTR] * ways for _ in range(sets)]
        self._page_gen = [[0] * ways for _ in range(sets)]
        self._region_gen = [[0] * ways for _ in range(sets)]
        self._conf = [[0] * ways for _ in range(sets)]
        self._next_valid = [[False] * ways for _ in range(sets)]
        self._next_offset = [[0] * ways for _ in range(sets)]
        self._next_tag = [[0] * ways for _ in range(sets)]
        repl_kwargs = {"m": cfg.srrip_bits} if cfg.replacement == "srrip" else {}
        if cfg.mode is PDedeMode.MULTI_ENTRY:
            half = ways // 2
            self._long_ways = list(range(half))
            self._short_ways = list(range(half, ways))
            self._long_policies = [
                make_replacement_policy(cfg.replacement, half, **repl_kwargs)
                for _ in range(sets)
            ]
            self._short_policies = [
                make_replacement_policy(cfg.replacement, half, **repl_kwargs)
                for _ in range(sets)
            ]
            self._policies = None
        else:
            self._long_ways = list(range(ways))
            self._short_ways = []
            self._long_policies = self._short_policies = None
            self._policies = [
                make_replacement_policy(cfg.replacement, ways, **repl_kwargs)
                for _ in range(sets)
            ]
        self._pending_next_offset: int | None = None
        self._pending_next_tag: int = 0
        self._last_btbm_slot: tuple[int, int] | None = None
        self._page_ptr_users: dict[int, set[tuple[int, int]]] = {}
        self._region_ptr_users: dict[int, set[tuple[int, int]]] = {}
        self.stale_pointer_reads = 0
        self.delta_hits = 0
        self.pointer_hits = 0
        self.next_target_provisions = 0
        self.next_target_correct = 0

    def _slot(self, pc: int) -> tuple[int, int]:
        hashed = hash_pc(pc)
        index = hashed & self._index_mask if self._sets_pow2 else hashed % self._sets
        return index, (hashed >> 40) & ((1 << self.config.tag_bits) - 1)

    def _find_way(self, set_index: int, tag: int) -> int | None:
        valid = self._valid[set_index]
        tags = self._tags[set_index]
        for way in range(self._ways):
            if valid[way] and tags[way] == tag:
                return way
        return None

    def _touch(self, set_index: int, way: int) -> None:
        if self._policies is not None:
            self._policies[set_index].on_hit(way)
        elif way in self._short_ways:
            self._short_policies[set_index].on_hit(way - self._short_ways[0])
        else:
            self._long_policies[set_index].on_hit(way)

    def _choose_victim(self, set_index: int, needs_pointers: bool) -> int:
        valid = self._valid[set_index]
        if self._policies is not None:
            return self._policies[set_index].victim(valid)
        half = len(self._long_ways)
        long_valid = valid[:half]
        short_valid = valid[half:]
        if needs_pointers:
            return self._long_policies[set_index].victim(long_valid)
        if not all(short_valid):
            return half + self._short_policies[set_index].victim(short_valid)
        if not all(long_valid):
            return self._long_policies[set_index].victim(long_valid)
        return half + self._short_policies[set_index].victim(short_valid)

    def _mark_inserted(self, set_index: int, way: int) -> None:
        if self._policies is not None:
            self._policies[set_index].on_insert(way)
        elif way in self._short_ways:
            self._short_policies[set_index].on_insert(way - self._short_ways[0])
        else:
            self._long_policies[set_index].on_insert(way)

    def _invalidate_page_ptr(self, pointer: int) -> None:
        for set_index, way in self._page_ptr_users.pop(pointer, ()):
            self._unlink_pointers(set_index, way)
            self._valid[set_index][way] = False

    def _invalidate_region_ptr(self, pointer: int) -> None:
        for set_index, way in self._region_ptr_users.pop(pointer, ()):
            self._unlink_pointers(set_index, way)
            self._valid[set_index][way] = False

    def _unlink_pointers(self, set_index: int, way: int) -> None:
        if not self.config.invalidate_stale_pointers:
            return
        slot = (set_index, way)
        page_ptr = self._page_ptr[set_index][way]
        if page_ptr != _NO_PTR:
            self._page_ptr_users.get(page_ptr, set()).discard(slot)
        region_ptr = self._region_ptr[set_index][way]
        if region_ptr != _NO_PTR:
            self._region_ptr_users.get(region_ptr, set()).discard(slot)

    def _link_pointers(self, set_index: int, way: int) -> None:
        if not self.config.invalidate_stale_pointers:
            return
        slot = (set_index, way)
        page_ptr = self._page_ptr[set_index][way]
        if page_ptr != _NO_PTR:
            self._page_ptr_users.setdefault(page_ptr, set()).add(slot)
        region_ptr = self._region_ptr[set_index][way]
        if region_ptr != _NO_PTR:
            self._region_ptr_users.setdefault(region_ptr, set()).add(slot)

    def _reconstruct(self, set_index: int, way: int, pc: int) -> tuple[int, int]:
        if self._delta[set_index][way]:
            self.delta_hits += 1
            return page_base(pc) | self._offsets[set_index][way], 1
        page_ptr = self._page_ptr[set_index][way]
        region_ptr = self._region_ptr[set_index][way]
        if self.page_btb.is_stale(page_ptr, self._page_gen[set_index][way]) or (
            self.region_btb.is_stale(region_ptr, self._region_gen[set_index][way])
        ):
            self.stale_pointer_reads += 1
        page_value = self.page_btb.read(page_ptr)
        region_value = self.region_btb.read(region_ptr)
        self.page_btb.touch(page_ptr)
        self.region_btb.touch(region_ptr)
        self.pointer_hits += 1
        target = join_target(region_value, page_value, self._offsets[set_index][way])
        return target, 2

    def lookup(self, pc: int) -> BTBLookup:
        pending = self._pending_next_offset
        pending_tag = self._pending_next_tag
        self._pending_next_offset = None
        set_index, tag = self._slot(pc)
        way = self._find_way(set_index, tag)
        if way is None:
            if pending is not None and (
                not self.config.next_target_tag_bits
                or pending_tag == fold_bits(pc >> 1, self.config.next_target_tag_bits)
            ):
                self.next_target_provisions += 1
                return BTBLookup(
                    hit=False,
                    target=page_base(pc) | pending,
                    latency=2 if self.config.always_two_cycle else 1,
                    provider="next-target",
                )
            return BTBLookup(hit=False, target=None, latency=1, provider="miss")
        target, latency = self._reconstruct(set_index, way, pc)
        if self.config.always_two_cycle:
            latency = 2
        if (
            self.config.mode is PDedeMode.MULTI_TARGET
            and self._delta[set_index][way]
            and self._next_valid[set_index][way]
        ):
            self._pending_next_offset = self._next_offset[set_index][way]
            self._pending_next_tag = self._next_tag[set_index][way]
        self._touch(set_index, way)
        provider = "btbm-delta" if self._delta[set_index][way] else "btbm-ptr"
        return BTBLookup(hit=True, target=target, latency=latency, provider=provider)

    def update(self, event: BranchEvent) -> None:
        self.stats.updates += 1
        if not event.taken:
            return
        if event.kind.is_indirect and not self.config.allocate_indirect:
            self._last_btbm_slot = None
            return
        pc, target = event.pc, event.target
        is_same_page = same_page(pc, target)
        use_delta = is_same_page and self.config.delta_encoding
        set_index, tag = self._slot(pc)
        way = self._find_way(set_index, tag)
        if way is not None:
            self._train_existing(set_index, way, pc, target, use_delta)
        else:
            way = self._allocate(set_index, tag, target, use_delta)
        if self.config.mode is PDedeMode.MULTI_TARGET:
            self._chain_next_target(set_index, way, pc, target, use_delta)

    def _train_existing(
        self, set_index: int, way: int, pc: int, target: int, use_delta: bool
    ) -> None:
        predicted, _ = self._reconstruct(set_index, way, pc)
        conf = self._conf[set_index]
        if predicted == target:
            if conf[way] < self._conf_max:
                conf[way] += 1
        elif conf[way] > 0:
            conf[way] -= 1
        else:
            self._write_target_fields(set_index, way, target, use_delta)
        self._touch(set_index, way)

    def _write_target_fields(
        self, set_index: int, way: int, target: int, use_delta: bool
    ) -> None:
        if not use_delta and way in self._short_ways:
            self._unlink_pointers(set_index, way)
            self._valid[set_index][way] = False
            return
        self._unlink_pointers(set_index, way)
        self._offsets[set_index][way] = page_offset(target)
        self._delta[set_index][way] = use_delta
        self._next_valid[set_index][way] = False
        if use_delta:
            self._page_ptr[set_index][way] = _NO_PTR
            self._region_ptr[set_index][way] = _NO_PTR
        else:
            region_ptr, region_gen = self.region_btb.allocate(region_id(target))
            page_ptr, page_gen = self.page_btb.allocate(page_in_region(target))
            self._region_ptr[set_index][way] = region_ptr
            self._region_gen[set_index][way] = region_gen
            self._page_ptr[set_index][way] = page_ptr
            self._page_gen[set_index][way] = page_gen
            self._link_pointers(set_index, way)

    def _allocate(self, set_index: int, tag: int, target: int, use_delta: bool) -> int:
        way = self._choose_victim(set_index, needs_pointers=not use_delta)
        if self._valid[set_index][way]:
            self.stats.evictions += 1
            self._unlink_pointers(set_index, way)
        self._valid[set_index][way] = True
        self._tags[set_index][way] = tag
        self._conf[set_index][way] = 0
        self._next_valid[set_index][way] = False
        self._page_ptr[set_index][way] = _NO_PTR
        self._region_ptr[set_index][way] = _NO_PTR
        self._write_target_fields(set_index, way, target, use_delta)
        self._mark_inserted(set_index, way)
        self.stats.allocations += 1
        return way

    def _chain_next_target(
        self, set_index: int, way: int, pc: int, target: int, is_same_page: bool
    ) -> None:
        if self._last_btbm_slot is not None and is_same_page:
            last_set, last_way = self._last_btbm_slot
            if self._valid[last_set][last_way] and self._delta[last_set][last_way]:
                self._next_valid[last_set][last_way] = True
                self._next_offset[last_set][last_way] = page_offset(target)
                if self.config.next_target_tag_bits:
                    self._next_tag[last_set][last_way] = fold_bits(
                        pc >> 1, self.config.next_target_tag_bits
                    )
        if is_same_page and self._valid[set_index][way]:
            self._last_btbm_slot = (set_index, way)
        else:
            self._last_btbm_slot = None

    def storage_bits(self) -> int:
        return self.config.storage_bits()

    @property
    def name(self) -> str:
        return f"PDede[{self.config.mode.value}]"

    def occupancy(self) -> int:
        return sum(sum(valid) for valid in self._valid)

    def delta_entry_count(self) -> int:
        return sum(
            1
            for set_index in range(self._sets)
            for way in range(self._ways)
            if self._valid[set_index][way] and self._delta[set_index][way]
        )

    def metrics(self) -> dict:
        data = super().metrics()
        data.update(
            btbm_occupancy=self.occupancy(),
            btbm_entries=self._sets * self._ways,
            btbm_delta_entries=self.delta_entry_count(),
            pdede_delta_hits_total=self.delta_hits,
            pdede_pointer_hits_total=self.pointer_hits,
            pdede_stale_pointer_reads_total=self.stale_pointer_reads,
            pdede_next_target_provisions_total=self.next_target_provisions,
            pdede_next_target_correct_total=self.next_target_correct,
        )
        data.update(self.page_btb.metrics("page_btb"))
        data.update(self.region_btb.metrics("region_btb"))
        return data


class SeedTwoLevelBTB(BranchTargetPredictor):
    """Verbatim seed copy of :class:`repro.btb.twolevel.TwoLevelBTB`."""

    def __init__(
        self,
        level0: BranchTargetPredictor,
        level1: BranchTargetPredictor,
        l1_extra_latency: int = 1,
    ) -> None:
        super().__init__()
        self.level0 = level0
        self.level1 = level1
        self.l1_extra_latency = l1_extra_latency
        self.l0_hits = 0
        self.l1_hits = 0

    def lookup(self, pc: int) -> BTBLookup:
        l0_result = self.level0.lookup(pc)
        if l0_result.hit:
            self.l0_hits += 1
            return BTBLookup(
                hit=True,
                target=l0_result.target,
                latency=l0_result.latency,
                provider="l0." + l0_result.provider,
            )
        l1_result = self.level1.lookup(pc)
        if l1_result.hit or l1_result.target is not None:
            self.l1_hits += 1
            return BTBLookup(
                hit=l1_result.hit,
                target=l1_result.target,
                latency=l1_result.latency + self.l1_extra_latency,
                provider="l1." + l1_result.provider,
            )
        return BTBLookup(
            hit=False,
            target=None,
            latency=l1_result.latency + self.l1_extra_latency,
            provider="miss",
        )

    def update(self, event: BranchEvent) -> None:
        self.stats.updates += 1
        self.level0.update(event)
        self.level1.update(event)

    def storage_bits(self) -> int:
        return self.level0.storage_bits() + self.level1.storage_bits()

    @property
    def name(self) -> str:
        return f"TwoLevel({self.level0.name}+{self.level1.name})"


def seed_counterpart(btb: BranchTargetPredictor) -> BranchTargetPredictor:
    """Map a freshly-built live BTB onto its frozen seed equivalent.

    The optimization pass rewrote PDede / baseline / two-level storage;
    those map onto the ``Seed*`` copies above.  Every other design's
    model code is untouched by the pass, so the instance itself (fresh
    from ``Design.build()``) already *is* the seed behaviour and passes
    through unchanged.
    """
    from repro.btb.baseline import BaselineBTB
    from repro.btb.twolevel import TwoLevelBTB
    from repro.core.pdede import PDedeBTB

    if isinstance(btb, PDedeBTB):
        return SeedPDedeBTB(btb.config)
    if isinstance(btb, BaselineBTB):
        return SeedBaselineBTB(
            entries=btb.entries,
            ways=btb.ways,
            tag_bits=btb.tag_bits,
            target_bits=btb.target_bits,
            conf_bits=btb.conf_bits,
            replacement=btb.replacement_name,
            srrip_bits=btb.srrip_bits,
            pid_bits=btb.pid_bits,
            latency=btb.latency,
            allocate_indirect=btb.allocate_indirect,
        )
    if isinstance(btb, TwoLevelBTB):
        return SeedTwoLevelBTB(
            seed_counterpart(btb.level0),
            seed_counterpart(btb.level1),
            l1_extra_latency=btb.l1_extra_latency,
        )
    return btb


class SeedFrontendSimulator:
    """Verbatim seed copy of the pre-optimization ``FrontendSimulator``.

    Differences from the live class are limited to plumbing that plays no
    role in the equivalence contract: no metrics publishing at the end of
    ``run`` and no sanitizer hook (the frozen BTBs are not registered
    with the sanitizer's checker table anyway).
    """

    def __init__(
        self,
        btb: BranchTargetPredictor,
        params: CoreParams = ICELAKE,
        direction: DirectionPredictor | None = None,
        ittage: ITTagePredictor | None = None,
        returns_use_ras: bool = True,
        ras_depth: int = 32,
        model_wrong_path: bool = False,
        wrong_path_bytes: int = 256,
    ) -> None:
        self.btb = btb
        self.params = params
        self.direction = direction or TageLitePredictor()
        self.ittage = ittage
        self.returns_use_ras = returns_use_ras
        self.ras = ReturnAddressStack(ras_depth)
        self.icache = ICache(params.icache_kib, params.icache_line_bytes, params.icache_ways)
        self.model_wrong_path = model_wrong_path
        self.wrong_path_bytes = wrong_path_bytes
        self.wrong_path_fetches = 0

    def run(self, trace: Trace, warmup_fraction: float = 0.25) -> FrontendStats:
        if not 0.0 <= warmup_fraction < 1.0:
            raise ValueError("warmup_fraction must be in [0, 1)")
        params = self.params
        stats = FrontendStats()
        warm_limit = int(len(trace) * warmup_fraction)
        # Deliberate update: integer-tick cycle accounting (module docs).
        tick = params.cycle_tick
        slack = 0
        slack_max = exact_ticks(params.max_slack_cycles, tick)
        fetch_tick = tick // params.fetch_width
        commit_tick = tick // params.commit_width
        miss_ticks = params.icache_miss_cycles * tick
        overlap_ticks = exact_ticks(_OVERLAPPED_MISS_CYCLES, tick)
        refill_shadow = exact_ticks(params.resteer_refill_cycles, tick)
        decode_penalty = params.decode_resteer_cycles * tick + refill_shadow
        execute_penalty = params.execute_resteer_cycles * tick + refill_shadow
        measuring = warm_limit == 0
        blocks_since_resteer = _REFILL_WINDOW
        cycles_ticks = 0
        base_cycles_ticks = 0
        icache_stall_ticks = 0
        btb_bubble_ticks = 0
        btb_resteer_ticks = 0
        bad_speculation_ticks = 0

        btb = self.btb
        direction = self.direction
        direction_is_perfect = direction.is_perfect
        ittage = self.ittage
        ras = self.ras
        icache_touch = self.icache.touch_range
        returns_use_ras = self.returns_use_ras

        for index, (pc, kind_value, taken, target, gap) in enumerate(trace.events()):
            if not measuring and index >= warm_limit:
                measuring = True
                btb.reset_stats()
            kind = _KINDS[kind_value]
            kind_is_indirect = _IS_INDIRECT[kind_value]
            block_instructions = gap + 1
            block_start = pc - gap * _INSTR_BYTES
            icache_misses = icache_touch(block_start, pc)
            if icache_misses:
                if blocks_since_resteer < _REFILL_WINDOW:
                    icache_cost = icache_misses * miss_ticks
                else:
                    icache_cost = icache_misses * overlap_ticks
            else:
                icache_cost = 0

            penalty = 0
            bubble = 0
            resteer_kind = 0
            btb_miss = False
            direction_mispredict = False
            indirect_mispredict = False
            ras_mispredict = False
            wrong_path_addr = -1

            if kind_value == _KIND_RETURN and returns_use_ras:
                if ras.pop() != target:
                    ras_mispredict = True
                    penalty = execute_penalty
                    resteer_kind = 2
                if ittage is not None:
                    ittage.record_history(pc, taken)
            else:
                if _IS_CALL[kind_value]:
                    ras.push(pc + _INSTR_BYTES)
                direction_correct = True
                if kind_value == _KIND_COND:
                    predicted_taken = taken if direction_is_perfect else direction.predict(pc)
                    direction.update(pc, taken)
                    direction_correct = predicted_taken == taken
                if ittage is not None:
                    ittage.record_history(pc, taken)
                if kind_is_indirect and ittage is not None:
                    predicted_target = ittage.predict(pc)
                    ittage.update(pc, target)
                    if taken and predicted_target != target:
                        indirect_mispredict = True
                        penalty = execute_penalty
                        resteer_kind = 2
                else:
                    lookup = btb.lookup(pc)
                    event = _SeedEventView(pc, kind, taken, target, gap)
                    btb_miss = btb.stats.record_outcome(event, lookup)
                    btb.update(event)
                    if not direction_correct:
                        direction_mispredict = True
                        penalty = execute_penalty
                        resteer_kind = 2
                        if taken:
                            wrong_path_addr = pc + _INSTR_BYTES
                        elif lookup.target is not None:
                            wrong_path_addr = lookup.target
                    elif taken and btb_miss:
                        if kind_is_indirect or kind_value == _KIND_RETURN:
                            if kind_is_indirect:
                                indirect_mispredict = True
                            penalty = execute_penalty
                            resteer_kind = 2
                            if lookup.target is not None:
                                wrong_path_addr = lookup.target
                        else:
                            penalty = decode_penalty
                            resteer_kind = 1
                    elif taken and lookup.latency > 1:
                        bubble = (lookup.latency - 1) * tick

            supply = block_instructions * fetch_tick + icache_cost + bubble
            demand = block_instructions * commit_tick
            effective = supply - slack
            if effective > demand:
                block_cycles = effective
                slack = 0
            else:
                block_cycles = demand
                slack = slack + demand - supply
                if slack > slack_max:
                    slack = slack_max
            if penalty:
                slack = 0
                blocks_since_resteer = 0
                if self.model_wrong_path and wrong_path_addr >= 0:
                    icache_touch(wrong_path_addr, wrong_path_addr + self.wrong_path_bytes)
                    self.wrong_path_fetches += 1
            else:
                blocks_since_resteer += 1

            if not measuring:
                continue

            stats.instructions += block_instructions
            cycles_ticks += block_cycles + penalty
            base_cycles_ticks += demand
            overrun = block_cycles - demand
            if overrun > 0:
                icache_part = icache_cost if icache_cost < overrun else overrun
                icache_stall_ticks += icache_part
                rest = overrun - icache_part
                btb_bubble_ticks += bubble if bubble < rest else rest
            stats.icache_misses += icache_misses
            stats.branches += 1
            if taken:
                stats.taken_branches += 1
            if btb_miss:
                stats.btb_misses += 1
            if resteer_kind == 1:
                stats.decode_resteers += 1
                btb_resteer_ticks += penalty
            elif resteer_kind == 2:
                stats.execute_resteers += 1
                bad_speculation_ticks += penalty
            if direction_mispredict:
                stats.direction_mispredicts += 1
            if indirect_mispredict:
                stats.indirect_mispredicts += 1
            if ras_mispredict:
                stats.ras_mispredicts += 1
            if bubble:
                stats.extra_latency_lookups += 1
        stats.set_cycle_buckets(
            tick,
            cycles_ticks,
            base_cycles_ticks,
            icache_stall_ticks,
            btb_bubble_ticks,
            btb_resteer_ticks,
            bad_speculation_ticks,
        )
        return stats


class _SeedEventView:
    """Seed copy of the per-event BranchEvent stand-in."""

    __slots__ = ("pc", "kind", "taken", "target", "instr_gap")

    def __init__(self, pc: int, kind: BranchKind, taken: bool, target: int, gap: int) -> None:
        self.pc = pc
        self.kind = kind
        self.taken = taken
        self.target = target
        self.instr_gap = gap

    @property
    def fall_through(self) -> int:
        return self.pc + 4
