"""Decoupled-frontend timing model (the IPC substrate).

The paper's results come from an industry cycle-accurate simulator; what
its IPC numbers respond to, for this study, is the *frontend*: how often
the fetch-directed-instruction-prefetch (FDIP) pipeline of Figure 2 is
resteered and how well the fetch queue hides smaller supply bubbles.
This model charges exactly those effects:

* every basic block costs ``instructions / fetch_width`` supply cycles
  and ``instructions / commit_width`` demand cycles;
* L1-I misses are charged at full L2 latency only on the *refill path*
  right after a resteer; on a correctly-predicted path the FDIP
  prefetcher has issued them ahead of fetch, leaving a small overlap
  cost.  This is the paper's central coupling: BTB misses do not just
  flush the pipeline, they expose instruction-fetch latency that FDIP
  would otherwise hide;
* a correct-but-slow BTB hit (PDede's 2-cycle pointer chase) adds a
  1-cycle supply bubble, absorbed by banked fetch-queue *slack* when the
  queue is running ahead (Figure 11b: deeper queue, more hiding);
* a BTB miss on a direct branch resteers at decode; indirect wrong
  targets and conditional direction mispredictions flush at execute
  (Figure 2); every resteer drains the fetch queue.

Absolute IPC is not that of the authors' silicon-correlated simulator;
relative IPC between two BTB designs -- the quantity every figure of the
paper reports -- tracks the same events.  Wrong-path ICache pollution is
not modelled (a second-order effect the paper notes qualitatively).
"""

from __future__ import annotations

import time
from itertools import islice

from repro.branch.direction import (
    DirectionPredictor,
    PerfectDirectionPredictor,
    TageLitePredictor,
)
from repro.obs.metrics import get_registry
from repro.branch.types import BranchKind
from repro.btb.base import BranchTargetPredictor
from repro.btb.ittage import ITTagePredictor
from repro.btb.vectorops import vector_supported
from repro.btb.ras import ReturnAddressStack
from repro.checks.sanitizer import get_sanitizer
from repro.frontend.icache import ICache
from repro.frontend.params import CoreParams, ICELAKE, exact_ticks
from repro.frontend.stats import FrontendStats
from repro.workloads.trace import Trace

_INSTR_BYTES = 4

#: Blocks after a resteer during which ICache misses are demand misses
#: (the prefetcher has not caught up yet).
_REFILL_WINDOW = 4

#: Residual cost of an ICache miss that FDIP prefetching overlapped.
_OVERLAPPED_MISS_CYCLES = 1.5

_KIND_RETURN = int(BranchKind.RETURN)
_KIND_COND = int(BranchKind.COND_DIRECT)

# Per-kind property tables indexed by int(kind) -- avoids enum-object
# construction in the hot loop.
_KINDS = [BranchKind(value) for value in range(len(BranchKind))]
_IS_CALL = [kind.is_call for kind in _KINDS]
_IS_INDIRECT = [kind.is_indirect for kind in _KINDS]
_KIND_NAMES = [kind.name for kind in _KINDS]


class FrontendSimulator:
    """Trace-driven frontend + backend-demand timing model.

    Args:
        btb: any :class:`BranchTargetPredictor` (baseline, PDede, ...).
        params: core configuration (defaults to the Icelake-like Table 3).
        direction: conditional direction predictor (default TAGE-lite).
        ittage: optional indirect-target predictor; when present,
            indirect branches are predicted by it and bypass the BTB
            (Section 5.6 -- pair with a BTB built with
            ``allocate_indirect=False``).
        returns_use_ras: serve returns from the RAS (default, Section 2)
            or push them through the BTB (Section 5.7).
        ras_depth: return-address-stack depth.
        model_wrong_path: also fetch ``wrong_path_bytes`` of code down
            the mispredicted path on execute-stage flushes, polluting the
            ICache (the paper notes this effect of BTB misses
            qualitatively; off by default).
        engine: ``"auto"`` (default) picks the fastest applicable tier
            (vector > fast > general); ``"vector"``/``"fast"`` force a
            tier and raise ``ValueError`` at :meth:`run` when the
            configuration cannot use it; ``"general"`` always applies.
    """

    _ENGINES = ("auto", "vector", "fast", "general")

    def __init__(
        self,
        btb: BranchTargetPredictor,
        params: CoreParams = ICELAKE,
        direction: DirectionPredictor | None = None,
        ittage: ITTagePredictor | None = None,
        returns_use_ras: bool = True,
        ras_depth: int = 32,
        model_wrong_path: bool = False,
        wrong_path_bytes: int = 256,
        engine: str = "auto",
    ) -> None:
        if engine not in self._ENGINES:
            raise ValueError(f"unknown engine {engine!r}; options: {self._ENGINES}")
        self.btb = btb
        self.params = params
        self._direction_is_default = direction is None
        self.direction = direction or TageLitePredictor()
        self.ittage = ittage
        self.returns_use_ras = returns_use_ras
        self.ras = ReturnAddressStack(ras_depth)
        self.icache = ICache(params.icache_kib, params.icache_line_bytes, params.icache_ways)
        self.model_wrong_path = model_wrong_path
        self.wrong_path_bytes = wrong_path_bytes
        self.wrong_path_fetches = 0
        self.engine = engine
        self._has_run = False
        #: Which engine the most recent :meth:`run` used ("vector" for
        #: the columnar engine, "fast" for the decoded-trace loop,
        #: "general" otherwise).
        self.last_engine = "none"

    def run(
        self,
        trace: Trace,
        warmup_fraction: float = 0.25,
        measure_range: tuple[int, int] | None = None,
    ) -> FrontendStats:
        """Simulate ``trace``; collect statistics after the warmup prefix.

        The paper warms microarchitectural state on 100M+ instructions
        before measuring 10M+ (Section 5.1); ``warmup_fraction`` plays
        the same role at trace scale.

        Two engines produce the same ``FrontendStats`` bit for bit (the
        equivalence suite is the referee): a *fast* engine driven by the
        trace's precomputed :class:`~repro.workloads.decoded.DecodedTrace`
        columns, used when the configuration allows it, and the
        *general* per-event engine that handles every configuration
        (ITTAGE, wrong-path modelling, custom predictors, armed
        sanitizer, reused simulators).

        Args:
            measure_range: simulate one *shard* of the trace -- replay
                events ``[0, start)`` for state warmup only, account
                events ``[start, stop)``, and stop at ``stop``.  Because
                measuring never feeds back into microarchitectural
                state, summing the shard stats of a partitioned run with
                :meth:`FrontendStats.merge` reproduces the unsharded
                result exactly.  Overrides ``warmup_fraction``.  A shard
                run is one-shot: post-run structure state is not
                meaningful (the fast engine skips its end-of-trace state
                adoption) and a subsequent ``run`` falls back to the
                general engine like any reused simulator.
        """
        if not 0.0 <= warmup_fraction < 1.0:
            raise ValueError("warmup_fraction must be in [0, 1)")
        if measure_range is not None:
            start, stop = measure_range
            if not 0 <= start <= stop <= len(trace):
                raise ValueError(
                    f"measure_range {measure_range!r} out of bounds for "
                    f"{len(trace)} events"
                )
        engine = self.engine
        if engine == "auto":
            if self._vector_path_applicable():
                engine = "vector"
            elif self._fast_path_applicable():
                engine = "fast"
            else:
                engine = "general"
        elif engine == "vector" and not self._vector_path_applicable():
            raise ValueError(
                "vector engine not applicable to this configuration "
                "(requires cold structures, fast-path support, and a "
                "vector-capable BTB)"
            )
        elif engine == "fast" and not self._fast_path_applicable():
            raise ValueError("fast engine not applicable to this configuration")
        self.last_engine = engine
        started = time.perf_counter()
        if engine == "vector":
            from repro.frontend.vector import run_vector

            stats = run_vector(self, trace, warmup_fraction, measure_range)
        elif engine == "fast":
            stats = self._run_fast(trace, warmup_fraction, measure_range)
        else:
            stats = self._run_general(trace, warmup_fraction, measure_range)
        elapsed = time.perf_counter() - started
        # Engine telemetry rides on the stats object as plain instance
        # attributes (not dataclass fields, so digests/to_dict stay
        # unchanged): which tier ran and its raw event throughput.
        processed = len(trace) if measure_range is None else measure_range[1]
        stats.engine = engine
        stats.events_per_sec = processed / elapsed if elapsed > 0 else 0.0
        self._has_run = True
        registry = get_registry()
        if registry.enabled:
            self.publish_metrics(stats, registry, app=trace.name)
        return stats

    def _direction_signature(self) -> str | None:
        """Key naming a replayable direction configuration (or None).

        Only configurations whose predictor state this simulator built
        itself (and therefore knows to be cold and default-shaped) can be
        served from the decoded trace's direction replay.
        """
        if type(self.direction) is PerfectDirectionPredictor:
            return "perfect"
        if self._direction_is_default:
            return "tage-default"
        return None

    def _fast_path_applicable(self) -> bool:
        """Whether the decoded-trace engine reproduces this configuration.

        The fast engine precomputes direction outcomes and ICache misses
        from cold state, so it only applies to a simulator's first run
        with cold structures; anything it cannot replicate exactly
        (ITTAGE, wrong-path pollution, an armed sanitizer, a
        caller-supplied predictor) falls back to the general engine.
        """
        return (
            not self._has_run
            and self.ittage is None
            and not self.model_wrong_path
            and self.icache.accesses == 0
            and getattr(self.btb, "supports_fast_path", False)
            and not get_sanitizer().enabled
            and self._direction_signature() is not None
        )

    def _vector_path_applicable(self) -> bool:
        """Whether the columnar vector engine reproduces this configuration.

        Everything the fast engine needs, plus a design with exact
        struct-of-arrays kernels and a pristine RAS (the vector engine
        replays the call/return stream from cold state, like the ICache
        and direction columns).
        """
        return (
            self._fast_path_applicable()
            and self.ras.pushes == 0
            and self.ras.pops == 0
            and len(self.ras) == 0
            and vector_supported(self.btb)
        )

    def _run_general(
        self,
        trace: Trace,
        warmup_fraction: float,
        measure_range: tuple[int, int] | None = None,
    ) -> FrontendStats:
        """Reference per-event engine (every configuration).

        All cycle quantities are integer *ticks* of ``1 / cycle_tick``
        cycles (see :class:`FrontendStats`): exact, associative, and
        therefore shard-mergeable.  The float buckets are derived once
        at the end.
        """
        params = self.params
        stats = FrontendStats()
        n_events = len(trace)
        if measure_range is None:
            warm_limit = int(n_events * warmup_fraction)
            stop = n_events
        else:
            warm_limit, stop = measure_range
        tick = params.cycle_tick
        slack = 0
        slack_max = exact_ticks(params.max_slack_cycles, tick)
        fetch_tick = tick // params.fetch_width
        commit_tick = tick // params.commit_width
        miss_ticks = params.icache_miss_cycles * tick
        overlap_ticks = exact_ticks(_OVERLAPPED_MISS_CYCLES, tick)
        refill_shadow = exact_ticks(params.resteer_refill_cycles, tick)
        decode_penalty = params.decode_resteer_cycles * tick + refill_shadow
        execute_penalty = params.execute_resteer_cycles * tick + refill_shadow
        measuring = warm_limit == 0
        blocks_since_resteer = _REFILL_WINDOW
        cycles_ticks = 0
        base_cycles_ticks = 0
        icache_stall_ticks = 0
        btb_bubble_ticks = 0
        btb_resteer_ticks = 0
        bad_speculation_ticks = 0

        btb = self.btb
        direction = self.direction
        direction_is_perfect = direction.is_perfect
        ittage = self.ittage
        ras = self.ras
        icache_touch = self.icache.touch_range
        returns_use_ras = self.returns_use_ras

        for index, (pc, kind_value, taken, target, gap) in islice(
            enumerate(trace.events()), stop
        ):
            if not measuring and index >= warm_limit:
                measuring = True
                btb.reset_stats()
            kind = _KINDS[kind_value]
            kind_is_indirect = _IS_INDIRECT[kind_value]
            block_instructions = gap + 1
            block_start = pc - gap * _INSTR_BYTES
            icache_misses = icache_touch(block_start, pc)
            if icache_misses:
                if blocks_since_resteer < _REFILL_WINDOW:
                    icache_cost = icache_misses * miss_ticks
                else:
                    icache_cost = icache_misses * overlap_ticks
            else:
                icache_cost = 0

            # ---- branch resolution -------------------------------------
            penalty = 0
            bubble = 0
            resteer_kind = 0  # 0 none, 1 decode, 2 execute
            btb_miss = False
            direction_mispredict = False
            indirect_mispredict = False
            ras_mispredict = False
            wrong_path_addr = -1

            if kind_value == _KIND_RETURN and returns_use_ras:
                if ras.pop() != target:
                    ras_mispredict = True
                    penalty = execute_penalty
                    resteer_kind = 2
                if ittage is not None:
                    ittage.record_history(pc, taken)
            else:
                if _IS_CALL[kind_value]:
                    ras.push(pc + _INSTR_BYTES)
                direction_correct = True
                if kind_value == _KIND_COND:
                    predicted_taken = taken if direction_is_perfect else direction.predict(pc)
                    direction.update(pc, taken)
                    direction_correct = predicted_taken == taken
                if ittage is not None:
                    ittage.record_history(pc, taken)
                if kind_is_indirect and ittage is not None:
                    predicted_target = ittage.predict(pc)
                    ittage.update(pc, target)
                    if taken and predicted_target != target:
                        indirect_mispredict = True
                        penalty = execute_penalty
                        resteer_kind = 2
                else:
                    lookup = btb.lookup(pc)
                    event = _EventView(pc, kind, taken, target, gap)
                    btb_miss = btb.stats.record_outcome(event, lookup)
                    btb.update(event)
                    if not direction_correct:
                        # Resolves at execute; dominates target issues.
                        direction_mispredict = True
                        penalty = execute_penalty
                        resteer_kind = 2
                        if taken:
                            wrong_path_addr = pc + _INSTR_BYTES  # fetched fall-through
                        elif lookup.target is not None:
                            wrong_path_addr = lookup.target  # fetched the taken path
                    elif taken and btb_miss:
                        if kind_is_indirect or kind_value == _KIND_RETURN:
                            if kind_is_indirect:
                                indirect_mispredict = True
                            penalty = execute_penalty
                            resteer_kind = 2
                            if lookup.target is not None:
                                wrong_path_addr = lookup.target
                        else:
                            penalty = decode_penalty
                            resteer_kind = 1
                    elif taken and lookup.latency > 1:
                        # Correct target, one cycle late (Figure 9D).
                        bubble = (lookup.latency - 1) * tick

            # ---- timing ------------------------------------------------
            supply = block_instructions * fetch_tick + icache_cost + bubble
            demand = block_instructions * commit_tick
            effective = supply - slack
            if effective > demand:
                block_cycles = effective
                slack = 0
            else:
                block_cycles = demand
                slack = slack + demand - supply
                if slack > slack_max:
                    slack = slack_max
            if penalty:
                slack = 0
                blocks_since_resteer = 0
                if self.model_wrong_path and wrong_path_addr >= 0:
                    # Wrong-path fetches pollute the ICache (lines pulled
                    # in for code that is then flushed).
                    icache_touch(wrong_path_addr, wrong_path_addr + self.wrong_path_bytes)
                    self.wrong_path_fetches += 1
            else:
                blocks_since_resteer += 1

            if not measuring:
                continue

            # ---- accounting ---------------------------------------------
            stats.instructions += block_instructions
            cycles_ticks += block_cycles + penalty
            base_cycles_ticks += demand
            overrun = block_cycles - demand
            if overrun > 0:
                icache_part = icache_cost if icache_cost < overrun else overrun
                icache_stall_ticks += icache_part
                rest = overrun - icache_part
                btb_bubble_ticks += bubble if bubble < rest else rest
            stats.icache_misses += icache_misses
            stats.branches += 1
            if taken:
                stats.taken_branches += 1
            if btb_miss:
                stats.btb_misses += 1
            if resteer_kind == 1:
                stats.decode_resteers += 1
                btb_resteer_ticks += penalty
            elif resteer_kind == 2:
                stats.execute_resteers += 1
                bad_speculation_ticks += penalty
            if direction_mispredict:
                stats.direction_mispredicts += 1
            if indirect_mispredict:
                stats.indirect_mispredicts += 1
            if ras_mispredict:
                stats.ras_mispredicts += 1
            if bubble:
                stats.extra_latency_lookups += 1
        stats.set_cycle_buckets(
            tick,
            cycles_ticks,
            base_cycles_ticks,
            icache_stall_ticks,
            btb_bubble_ticks,
            btb_resteer_ticks,
            bad_speculation_ticks,
        )
        return stats

    def _run_fast(
        self,
        trace: Trace,
        warmup_fraction: float,
        measure_range: tuple[int, int] | None = None,
    ) -> FrontendStats:
        """Decoded-column engine; bit-identical to :meth:`_run_general`.

        Per-event work that is trace-pure (hashing, page compare, block
        geometry, ICache reference stream, direction outcome) comes from
        the trace's cached :class:`DecodedTrace`; per-event BTB work goes
        through one combined ``observe_fast`` call; accounting runs on
        integer-tick locals and is flushed once at the end.
        """
        params = self.params
        decoded = trace.decoded()
        n_events = decoded.n_events
        if measure_range is None:
            warm_limit = int(n_events * warmup_fraction)
            stop = n_events
        else:
            warm_limit, stop = measure_range
        tick = params.cycle_tick
        supply_col, demand_col = decoded.supply_demand_ticks(
            tick // params.fetch_width, tick // params.commit_width
        )
        icache_col, icache_final = decoded.icache_misses(
            params.icache_kib, params.icache_line_bytes, params.icache_ways
        )
        signature = self._direction_signature()
        if signature == "perfect":
            direction_col: list[bool] = [True] * n_events
            direction_final = None
        else:
            direction_col, direction_final = decoded.direction_outcomes(signature)

        slack = 0
        slack_max = exact_ticks(params.max_slack_cycles, tick)
        miss_ticks = params.icache_miss_cycles * tick
        overlap_ticks = exact_ticks(_OVERLAPPED_MISS_CYCLES, tick)
        refill_shadow = exact_ticks(params.resteer_refill_cycles, tick)
        decode_penalty = params.decode_resteer_cycles * tick + refill_shadow
        execute_penalty = params.execute_resteer_cycles * tick + refill_shadow
        measuring = warm_limit == 0
        blocks_since_resteer = _REFILL_WINDOW

        btb = self.btb
        observe_fast = btb.observe_fast
        ras = self.ras
        ras_pop = ras.pop
        ras_push = ras.push
        returns_use_ras = self.returns_use_ras
        is_call_by_kind = _IS_CALL
        is_indirect_by_kind = _IS_INDIRECT
        kind_return = _KIND_RETURN

        # FrontendStats fields, accumulated in integer-tick locals (the
        # same exact sums as the general engine, in any order).
        instructions = 0
        cycles_ticks = 0
        base_cycles_ticks = 0
        icache_stall_ticks = 0
        btb_bubble_ticks = 0
        btb_resteer_ticks = 0
        bad_speculation_ticks = 0
        branches = 0
        taken_branches = 0
        btb_miss_count = 0
        decode_resteers = 0
        execute_resteers = 0
        direction_mispredicts = 0
        indirect_mispredicts = 0
        ras_mispredicts = 0
        icache_miss_count = 0
        extra_latency_lookups = 0
        # BTBStats.record_outcome fields (everything else in BTBStats is
        # maintained live inside observe_fast).
        lookups = 0
        taken_lookups = 0
        lookup_hits = 0
        lookup_misses = 0
        wrong_target = 0
        miss_kind_counts = [0] * len(_KINDS)

        for index, (
            pc,
            kind_value,
            taken,
            target,
            block_instructions,
            supply_base,
            demand,
            icache_misses,
            hashed,
            is_same_page,
            direction_correct,
        ) in islice(
            enumerate(
                zip(
                    trace.pcs,
                    trace.kinds,
                    trace.takens,
                    trace.targets,
                    decoded.block_instructions,
                    supply_col,
                    demand_col,
                    icache_col,
                    decoded.hashes,
                    decoded.same_page,
                    direction_col,
                )
            ),
            stop,
        ):
            if not measuring and index >= warm_limit:
                measuring = True
                btb.reset_stats()
                lookups = 0
                taken_lookups = 0
                lookup_hits = 0
                lookup_misses = 0
                wrong_target = 0
                miss_kind_counts = [0] * len(_KINDS)
            if icache_misses:
                if blocks_since_resteer < _REFILL_WINDOW:
                    icache_cost = icache_misses * miss_ticks
                else:
                    icache_cost = icache_misses * overlap_ticks
            else:
                icache_cost = 0

            penalty = 0
            bubble = 0
            resteer_kind = 0
            btb_miss = False
            indirect_mispredict = False
            ras_mispredict = False
            direction_mispredict = False

            if kind_value == kind_return and returns_use_ras:
                if ras_pop() != target:
                    ras_mispredict = True
                    penalty = execute_penalty
                    resteer_kind = 2
            else:
                if is_call_by_kind[kind_value]:
                    ras_push(pc + _INSTR_BYTES)
                kind_is_indirect = is_indirect_by_kind[kind_value]
                ltarget, lhit, latency = observe_fast(
                    pc, target, taken, kind_is_indirect, hashed, is_same_page
                )
                lookups += 1
                if taken:
                    taken_lookups += 1
                    if ltarget == target:
                        lookup_hits += 1
                    else:
                        lookup_misses += 1
                        if lhit:
                            wrong_target += 1
                        miss_kind_counts[kind_value] += 1
                        btb_miss = True
                if not direction_correct:
                    direction_mispredict = True
                    penalty = execute_penalty
                    resteer_kind = 2
                elif taken and btb_miss:
                    if kind_is_indirect or kind_value == kind_return:
                        if kind_is_indirect:
                            indirect_mispredict = True
                        penalty = execute_penalty
                        resteer_kind = 2
                    else:
                        penalty = decode_penalty
                        resteer_kind = 1
                elif taken and latency > 1:
                    bubble = (latency - 1) * tick

            supply = supply_base + icache_cost + bubble
            effective = supply - slack
            if effective > demand:
                block_cycles = effective
                slack = 0
            else:
                block_cycles = demand
                slack = slack + demand - supply
                if slack > slack_max:
                    slack = slack_max
            if penalty:
                slack = 0
                blocks_since_resteer = 0
            else:
                blocks_since_resteer += 1

            if not measuring:
                continue

            instructions += block_instructions
            cycles_ticks += block_cycles + penalty
            base_cycles_ticks += demand
            overrun = block_cycles - demand
            if overrun > 0:
                icache_part = icache_cost if icache_cost < overrun else overrun
                icache_stall_ticks += icache_part
                rest = overrun - icache_part
                btb_bubble_ticks += bubble if bubble < rest else rest
            icache_miss_count += icache_misses
            branches += 1
            if taken:
                taken_branches += 1
            if btb_miss:
                btb_miss_count += 1
            if resteer_kind == 1:
                decode_resteers += 1
                btb_resteer_ticks += penalty
            elif resteer_kind == 2:
                execute_resteers += 1
                bad_speculation_ticks += penalty
            if direction_mispredict:
                direction_mispredicts += 1
            if indirect_mispredict:
                indirect_mispredicts += 1
            if ras_mispredict:
                ras_mispredicts += 1
            if bubble:
                extra_latency_lookups += 1

        stats = FrontendStats(
            instructions=instructions,
            branches=branches,
            taken_branches=taken_branches,
            btb_misses=btb_miss_count,
            decode_resteers=decode_resteers,
            execute_resteers=execute_resteers,
            direction_mispredicts=direction_mispredicts,
            indirect_mispredicts=indirect_mispredicts,
            ras_mispredicts=ras_mispredicts,
            icache_misses=icache_miss_count,
            extra_latency_lookups=extra_latency_lookups,
        )
        stats.set_cycle_buckets(
            tick,
            cycles_ticks,
            base_cycles_ticks,
            icache_stall_ticks,
            btb_bubble_ticks,
            btb_resteer_ticks,
            bad_speculation_ticks,
        )
        btb_stats = btb.stats
        btb_stats.lookups += lookups
        btb_stats.taken_lookups += taken_lookups
        btb_stats.hits += lookup_hits
        btb_stats.misses += lookup_misses
        btb_stats.wrong_target += wrong_target
        misses_by_kind = btb_stats.misses_by_kind
        for kind_value, count in enumerate(miss_kind_counts):
            if count:
                name = _KIND_NAMES[kind_value]
                misses_by_kind[name] = misses_by_kind.get(name, 0) + count
        # Adopt the replayed end-of-trace structure states so post-run
        # inspection (snapshots, a later general-engine run) matches a
        # live run; the cached replay objects themselves stay pristine.
        # A shard run stops mid-trace, where the replayed finals do not
        # describe the stopping point -- shard runs are one-shot, so the
        # structures are simply left untouched.
        if stop == n_events:
            self.icache = icache_final.clone()
            if direction_final is not None:
                self.direction = direction_final.clone()
        return stats

    def publish_metrics(self, stats: FrontendStats, registry=None, app: str = "?") -> None:
        """Publish one run's aggregate metrics into the registry.

        Called once at the end of :meth:`run` (never per event, so the
        hot loop carries no instrumentation); every series is labelled
        ``app=<trace name>, design=<btb name>`` so sweeps stay separable.
        Publishes the frontend cycle accounting, the resteer-cause
        split, and each structure's own snapshot (BTB ``metrics()``,
        ICache / RAS ``snapshot()``).
        """
        registry = registry or get_registry()
        labels = {"app": app, "design": self.btb.name}
        frontend = {
            "frontend_instructions_total": stats.instructions,
            "frontend_cycles_total": stats.cycles,
            "frontend_branches_total": stats.branches,
            "frontend_taken_branches_total": stats.taken_branches,
            "frontend_btb_misses_total": stats.btb_misses,
            "frontend_icache_misses_total": stats.icache_misses,
            "frontend_extra_latency_lookups_total": stats.extra_latency_lookups,
            "frontend_wrong_path_fetches_total": self.wrong_path_fetches,
            "frontend_ipc": stats.ipc,
            "frontend_btb_mpki": stats.btb_mpki,
            "frontend_bound_fraction": stats.frontend_bound_fraction,
            "frontend_bad_speculation_fraction": stats.bad_speculation_fraction,
        }
        registry.publish(frontend, **labels)
        registry.gauge(
            "frontend_engine_events_per_sec",
            "raw event throughput of the engine tier that ran",
        ).set(
            float(getattr(stats, "events_per_sec", 0.0)),
            engine=getattr(stats, "engine", "none"),
            **labels,
        )
        stalls = registry.counter(
            "frontend_stall_cycles_total", "Top-Down cycle buckets (Figure 1)"
        )
        stalls.inc(stats.icache_stall_cycles, bucket="icache", **labels)
        stalls.inc(stats.btb_bubble_cycles, bucket="btb-bubble", **labels)
        stalls.inc(stats.btb_resteer_cycles, bucket="btb-resteer", **labels)
        stalls.inc(stats.bad_speculation_cycles, bucket="bad-speculation", **labels)
        resteers = registry.counter(
            "frontend_resteers_total", "resteers by pipeline stage and cause"
        )
        resteers.inc(stats.decode_resteers, stage="decode", cause="btb-direct", **labels)
        resteers.inc(
            stats.direction_mispredicts, stage="execute", cause="direction", **labels
        )
        resteers.inc(
            stats.indirect_mispredicts, stage="execute", cause="indirect", **labels
        )
        resteers.inc(stats.ras_mispredicts, stage="execute", cause="ras", **labels)
        registry.publish(self.btb.metrics(), **labels)
        by_kind = registry.counter(
            "btb_misses_by_kind_total", "BTB misses split by branch kind"
        )
        for kind, count in self.btb.stats.misses_by_kind.items():
            by_kind.inc(count, kind=kind, **labels)
        registry.publish(self.icache.snapshot(), **labels)
        registry.publish(self.ras.snapshot(), **labels)
        sanitizer = get_sanitizer()
        if sanitizer.enabled:
            registry.publish(sanitizer.snapshot(), **labels)


class _EventView:
    """Minimal BranchEvent stand-in built without validation (hot path)."""

    __slots__ = ("pc", "kind", "taken", "target", "instr_gap")

    def __init__(self, pc: int, kind: BranchKind, taken: bool, target: int, gap: int) -> None:
        self.pc = pc
        self.kind = kind
        self.taken = taken
        self.target = target
        self.instr_gap = gap

    @property
    def fall_through(self) -> int:
        return self.pc + 4
